#include "exec/expr/expr.h"

#include <cmath>

#include "common/string_util.h"
#include "exec/expr/like.h"

namespace claims {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

namespace {

class ColumnRefExpr : public Expr {
 public:
  ColumnRefExpr(int index, DataType type, std::string name)
      : index_(index), type_(type), name_(std::move(name)) {}

  DataType type() const override { return type_; }

  Value Eval(const Schema& schema, const char* row) const override {
    return schema.GetValue(row, index_);
  }

  bool EvalBool(const Schema& schema, const char* row) const override {
    switch (type_) {
      case DataType::kFloat64:
        return schema.GetFloat64(row, index_) != 0;
      case DataType::kInt64:
        return schema.GetInt64(row, index_) != 0;
      default:
        return schema.GetInt32(row, index_) != 0;
    }
  }

  std::string ToString() const override {
    return name_.empty() ? StrFormat("$%d", index_) : name_;
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kColumnRef;
    s.column = index_;
    return s;
  }

  int index() const { return index_; }

 private:
  int index_;
  DataType type_;
  std::string name_;
};

class LiteralExpr : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  DataType type() const override { return value_.type(); }
  Value Eval(const Schema&, const char*) const override { return value_; }
  std::string ToString() const override {
    return value_.is_string() ? "'" + value_.ToString() + "'"
                              : value_.ToString();
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kLiteral;
    s.literal = &value_;
    return s;
  }

 private:
  Value value_;
};

class CompareExpr : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  DataType type() const override { return DataType::kInt32; }

  Value Eval(const Schema& schema, const char* row) const override {
    return Value::Int32(EvalBool(schema, row) ? 1 : 0);
  }

  bool EvalBool(const Schema& schema, const char* row) const override {
    int c = left_->Eval(schema, row).Compare(right_->Eval(schema, row));
    switch (op_) {
      case CompareOp::kEq: return c == 0;
      case CompareOp::kNe: return c != 0;
      case CompareOp::kLt: return c < 0;
      case CompareOp::kLe: return c <= 0;
      case CompareOp::kGt: return c > 0;
      case CompareOp::kGe: return c >= 0;
    }
    return false;
  }

  std::string ToString() const override {
    return StrFormat("(%s %s %s)", left_->ToString().c_str(),
                     CompareOpName(op_), right_->ToString().c_str());
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kCompare;
    s.compare_op = op_;
    s.left = left_.get();
    s.right = right_.get();
    return s;
  }

 private:
  CompareOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class ArithExpr : public Expr {
 public:
  ArithExpr(ArithOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {
    type_ = (l_type() == DataType::kFloat64 || r_type() == DataType::kFloat64 ||
             op == ArithOp::kDiv)
                ? DataType::kFloat64
                : DataType::kInt64;
  }

  DataType type() const override { return type_; }

  Value Eval(const Schema& schema, const char* row) const override {
    Value l = left_->Eval(schema, row);
    Value r = right_->Eval(schema, row);
    if (type_ == DataType::kFloat64) {
      double a = l.ToDouble();
      double b = r.ToDouble();
      switch (op_) {
        case ArithOp::kAdd: return Value::Float64(a + b);
        case ArithOp::kSub: return Value::Float64(a - b);
        case ArithOp::kMul: return Value::Float64(a * b);
        case ArithOp::kDiv: return Value::Float64(b == 0 ? 0 : a / b);
      }
    }
    int64_t a = l.AsInt64();
    int64_t b = r.AsInt64();
    switch (op_) {
      case ArithOp::kAdd: return Value::Int64(a + b);
      case ArithOp::kSub: return Value::Int64(a - b);
      case ArithOp::kMul: return Value::Int64(a * b);
      case ArithOp::kDiv: return Value::Int64(b == 0 ? 0 : a / b);
    }
    return Value();
  }

  std::string ToString() const override {
    return StrFormat("(%s %s %s)", left_->ToString().c_str(), ArithOpName(op_),
                     right_->ToString().c_str());
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kArith;
    s.arith_op = op_;
    s.left = left_.get();
    s.right = right_.get();
    return s;
  }

 private:
  DataType l_type() const { return left_->type(); }
  DataType r_type() const { return right_->type(); }

  ArithOp op_;
  ExprPtr left_;
  ExprPtr right_;
  DataType type_;
};

class LogicExpr : public Expr {
 public:
  LogicExpr(LogicOp op, ExprPtr l, ExprPtr r)
      : op_(op), left_(std::move(l)), right_(std::move(r)) {}
  DataType type() const override { return DataType::kInt32; }

  Value Eval(const Schema& schema, const char* row) const override {
    return Value::Int32(EvalBool(schema, row) ? 1 : 0);
  }

  bool EvalBool(const Schema& schema, const char* row) const override {
    // Short-circuit evaluation.
    if (op_ == LogicOp::kAnd) {
      return left_->EvalBool(schema, row) && right_->EvalBool(schema, row);
    }
    return left_->EvalBool(schema, row) || right_->EvalBool(schema, row);
  }

  std::string ToString() const override {
    return StrFormat("(%s %s %s)", left_->ToString().c_str(),
                     op_ == LogicOp::kAnd ? "AND" : "OR",
                     right_->ToString().c_str());
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kLogic;
    s.logic_op = op_;
    s.left = left_.get();
    s.right = right_.get();
    return s;
  }

 private:
  LogicOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}
  DataType type() const override { return DataType::kInt32; }
  Value Eval(const Schema& schema, const char* row) const override {
    return Value::Int32(EvalBool(schema, row) ? 1 : 0);
  }
  bool EvalBool(const Schema& schema, const char* row) const override {
    return !child_->EvalBool(schema, row);
  }
  std::string ToString() const override {
    return "(NOT " + child_->ToString() + ")";
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kNot;
    s.child = child_.get();
    return s;
  }

 private:
  ExprPtr child_;
};

class LikeExpr : public Expr {
 public:
  LikeExpr(ExprPtr child, std::string pattern, bool negated)
      : child_(std::move(child)), pattern_(std::move(pattern)),
        negated_(negated) {}
  DataType type() const override { return DataType::kInt32; }
  Value Eval(const Schema& schema, const char* row) const override {
    return Value::Int32(EvalBool(schema, row) ? 1 : 0);
  }
  bool EvalBool(const Schema& schema, const char* row) const override {
    // Fast path: bare CHAR column avoids the Value materialization.
    int col = AsColumnRef(*child_);
    bool m;
    if (col >= 0 && schema.column(col).type == DataType::kChar) {
      m = LikeMatch(schema.GetString(row, col), pattern_);
    } else {
      m = LikeMatch(child_->Eval(schema, row).AsString(), pattern_);
    }
    return negated_ ? !m : m;
  }
  std::string ToString() const override {
    return StrFormat("(%s %sLIKE '%s')", child_->ToString().c_str(),
                     negated_ ? "NOT " : "", pattern_.c_str());
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kLike;
    s.child = child_.get();
    s.pattern = &pattern_;
    s.negated = negated_;
    return s;
  }

 private:
  ExprPtr child_;
  std::string pattern_;
  bool negated_;
};

class InListExpr : public Expr {
 public:
  InListExpr(ExprPtr child, std::vector<Value> values, bool negated)
      : child_(std::move(child)), values_(std::move(values)),
        negated_(negated) {}
  DataType type() const override { return DataType::kInt32; }
  Value Eval(const Schema& schema, const char* row) const override {
    return Value::Int32(EvalBool(schema, row) ? 1 : 0);
  }
  bool EvalBool(const Schema& schema, const char* row) const override {
    Value v = child_->Eval(schema, row);
    for (const Value& candidate : values_) {
      if (v.Compare(candidate) == 0) return !negated_;
    }
    return negated_;
  }
  std::string ToString() const override {
    std::string out = "(" + child_->ToString() +
                      (negated_ ? " NOT IN (" : " IN (");
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i) out += ", ";
      out += values_[i].ToString();
    }
    return out + "))";
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kInList;
    s.child = child_.get();
    s.in_values = &values_;
    s.negated = negated_;
    return s;
  }

 private:
  ExprPtr child_;
  std::vector<Value> values_;
  bool negated_;
};

class CaseExpr : public Expr {
 public:
  CaseExpr(std::vector<std::pair<ExprPtr, ExprPtr>> branches, ExprPtr otherwise)
      : branches_(std::move(branches)), otherwise_(std::move(otherwise)) {
    type_ = branches_.empty() ? DataType::kInt64 : branches_[0].second->type();
  }
  DataType type() const override { return type_; }
  Value Eval(const Schema& schema, const char* row) const override {
    for (const auto& [cond, then] : branches_) {
      if (cond->EvalBool(schema, row)) return then->Eval(schema, row);
    }
    if (otherwise_ != nullptr) return otherwise_->Eval(schema, row);
    // SQL CASE without ELSE yields NULL; we approximate with a typed zero.
    return type_ == DataType::kFloat64 ? Value::Float64(0) : Value::Int64(0);
  }
  std::string ToString() const override {
    std::string out = "CASE";
    for (const auto& [cond, then] : branches_) {
      out += " WHEN " + cond->ToString() + " THEN " + then->ToString();
    }
    if (otherwise_ != nullptr) out += " ELSE " + otherwise_->ToString();
    return out + " END";
  }

 private:
  std::vector<std::pair<ExprPtr, ExprPtr>> branches_;
  ExprPtr otherwise_;
  DataType type_;
};

class YearExpr : public Expr {
 public:
  explicit YearExpr(ExprPtr child) : child_(std::move(child)) {}
  DataType type() const override { return DataType::kInt32; }
  Value Eval(const Schema& schema, const char* row) const override {
    int32_t days;
    int col = AsColumnRef(*child_);
    if (col >= 0) {
      days = schema.GetInt32(row, col);
    } else {
      days = static_cast<int32_t>(child_->Eval(schema, row).AsInt64());
    }
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    return Value::Int32(y);
  }
  std::string ToString() const override {
    return "YEAR(" + child_->ToString() + ")";
  }

  ExprShape Shape() const override {
    ExprShape s;
    s.kind = ExprShape::Kind::kYear;
    s.child = child_.get();
    return s;
  }

 private:
  ExprPtr child_;
};

}  // namespace

ExprPtr MakeColumnRef(int index, DataType type, std::string name) {
  return std::make_shared<ColumnRefExpr>(index, type, std::move(name));
}
ExprPtr MakeLiteral(Value v) {
  return std::make_shared<LiteralExpr>(std::move(v));
}
ExprPtr MakeCompare(CompareOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<CompareExpr>(op, std::move(left), std::move(right));
}
ExprPtr MakeArith(ArithOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<ArithExpr>(op, std::move(left), std::move(right));
}
ExprPtr MakeLogic(LogicOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<LogicExpr>(op, std::move(left), std::move(right));
}
ExprPtr MakeNot(ExprPtr child) {
  return std::make_shared<NotExpr>(std::move(child));
}
ExprPtr MakeLike(ExprPtr child, std::string pattern, bool negated) {
  return std::make_shared<LikeExpr>(std::move(child), std::move(pattern),
                                    negated);
}
ExprPtr MakeInList(ExprPtr child, std::vector<Value> values, bool negated) {
  return std::make_shared<InListExpr>(std::move(child), std::move(values),
                                      negated);
}
ExprPtr MakeCase(std::vector<std::pair<ExprPtr, ExprPtr>> branches,
                 ExprPtr otherwise) {
  return std::make_shared<CaseExpr>(std::move(branches), std::move(otherwise));
}
ExprPtr MakeYear(ExprPtr child) {
  return std::make_shared<YearExpr>(std::move(child));
}

int AsColumnRef(const Expr& expr) {
  const auto* ref = dynamic_cast<const ColumnRefExpr*>(&expr);
  return ref != nullptr ? ref->index() : -1;
}

}  // namespace claims
