#include "exec/expr/like.h"

namespace claims {

bool LikeMatch(std::string_view text, std::string_view pattern) {
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string_view::npos;  // position after last '%'
  size_t star_t = 0;                       // text position when '%' was seen
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = ++p;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      // Backtrack: let the last '%' absorb one more character.
      p = star_p;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

}  // namespace claims
