#ifndef CLAIMS_EXEC_EXPR_LIKE_H_
#define CLAIMS_EXEC_EXPR_LIKE_H_

#include <string>
#include <string_view>

namespace claims {

/// SQL LIKE pattern matching: '%' matches any run (including empty), '_' any
/// single character; everything else is literal. Case-sensitive, no escape
/// syntax (TPC-H / the paper's queries do not use one). Iterative two-pointer
/// algorithm — O(n·m) worst case, linear in practice.
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace claims

#endif  // CLAIMS_EXEC_EXPR_LIKE_H_
