#ifndef CLAIMS_EXEC_EXPR_BATCH_EXPR_H_
#define CLAIMS_EXEC_EXPR_BATCH_EXPR_H_

#include <cstdint>
#include <memory>

#include "exec/expr/expr.h"
#include "storage/block.h"
#include "storage/schema.h"

namespace claims {

/// Which inner loop the hot operators run. kBatch (the default) compiles
/// predicates and computed columns into non-virtual column kernels over
/// selection vectors; kScalar forces the row-at-a-time `Expr::Eval` path
/// everywhere. The two paths are block-for-block equivalent (enforced by
/// tests/batch_kernel_test.cc) — the switch exists for benchmarking the
/// speedup and as an escape hatch, selectable with CLAIMS_SCALAR_KERNELS=1.
enum class KernelMode { kBatch, kScalar };

/// Process-wide kernel mode; first call resolves CLAIMS_SCALAR_KERNELS.
KernelMode CurrentKernelMode();
void SetKernelMode(KernelMode mode);

/// A boolean `Expr` tree compiled into selection-vector kernels. Supported
/// shapes (column compare against literal or column, YEAR(date) compare,
/// LIKE over a CHAR column, IN lists, AND/OR/NOT combinations) become tight
/// typed loops; any other subtree is wrapped in a scalar node that calls
/// `Expr::EvalBool` per surviving row, so compilation never fails and the
/// result is always exactly equivalent to the scalar path.
///
/// Thread-safe after construction: `FilterBlock` is const and keeps no
/// mutable state, matching the iterator contract of concurrent `Next` calls.
class BatchPredicate {
 public:
  ~BatchPredicate();

  /// Compiles `expr` (a boolean predicate over rows of `schema`). Never
  /// returns null; unsupported shapes fall back per-node.
  static std::unique_ptr<BatchPredicate> Compile(const Schema& schema,
                                                 ExprPtr expr);

  /// Filters rows `sel[0..n)` of `block` (`sel == nullptr` means rows
  /// 0..n-1), writing surviving row indices to `out` in ascending order.
  /// Returns the survivor count. `out` may alias `sel` (in-place narrowing):
  /// every kernel writes at or behind its read cursor.
  int32_t FilterBlock(const Block& block, const int32_t* sel, int32_t n,
                      int32_t* out) const;

  /// True when no scalar-fallback node was emitted (perf-smoke asserts this
  /// for the benchmark predicates so a silent fallback cannot masquerade as
  /// a batch kernel).
  bool fully_compiled() const;

 private:
  BatchPredicate();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// A numeric (or group-key) `Expr` compiled for batch evaluation: typed
/// column loads, literal splats, and int64/double arithmetic lanes that
/// mirror `ArithExpr::Eval` exactly (pure-int stays exact int64, any float or
/// division widens to double, divide-by-zero yields 0). Used by the
/// aggregation fold for argument vectors and group-key materialization.
class BatchCompute {
 public:
  ~BatchCompute();

  static std::unique_ptr<BatchCompute> Compile(const Schema& schema,
                                               ExprPtr expr);

  /// Evaluates the expression for rows `sel[0..n)` (`sel == nullptr` = rows
  /// 0..n-1) widened to double — bit-identical to `Eval(...).ToDouble()`.
  void EvalDouble(const Block& block, const int32_t* sel, int32_t n,
                  double* out) const;

  /// Writes the expression value into column `out_col` of `n` consecutive
  /// `out_schema` rows starting at `out_rows`. Equivalent to per-row
  /// `out_schema.SetValue(row, out_col, Eval(...))`; a bare column reference
  /// of matching type is a strided copy.
  void Materialize(const Block& block, const int32_t* sel, int32_t n,
                   const Schema& out_schema, int out_col,
                   char* out_rows) const;

  bool fully_compiled() const;

 private:
  BatchCompute();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace claims

#endif  // CLAIMS_EXEC_EXPR_BATCH_EXPR_H_
