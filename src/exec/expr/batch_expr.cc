#include "exec/expr/batch_expr.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "exec/expr/like.h"
#include "storage/types.h"
#include "storage/value.h"

namespace claims {

// --- Kernel mode ------------------------------------------------------------

namespace {
// -1 = unresolved (read CLAIMS_SCALAR_KERNELS on first use).
std::atomic<int> g_kernel_mode{-1};
}  // namespace

KernelMode CurrentKernelMode() {
  int m = g_kernel_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    const char* env = std::getenv("CLAIMS_SCALAR_KERNELS");
    m = static_cast<int>(env != nullptr && env[0] != '\0' && env[0] != '0'
                             ? KernelMode::kScalar
                             : KernelMode::kBatch);
    g_kernel_mode.store(m, std::memory_order_relaxed);
  }
  return static_cast<KernelMode>(m);
}

void SetKernelMode(KernelMode mode) {
  g_kernel_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

namespace {

bool IsIntFamily(DataType t) {
  return t == DataType::kInt32 || t == DataType::kInt64 ||
         t == DataType::kDate;
}
bool IsIntValue(const Value& v) { return IsIntFamily(v.type()); }

inline int64_t LoadInt(const char* p, bool is32) {
  if (is32) {
    int32_t v;
    std::memcpy(&v, p, 4);
    return v;
  }
  int64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline double LoadNum(const char* p, DataType t) {
  switch (t) {
    case DataType::kInt32:
    case DataType::kDate: {
      int32_t v;
      std::memcpy(&v, p, 4);
      return v;
    }
    case DataType::kInt64: {
      int64_t v;
      std::memcpy(&v, p, 8);
      return static_cast<double>(v);
    }
    default: {
      double v;
      std::memcpy(&v, p, 8);
      return v;
    }
  }
}

inline std::string_view LoadStr(const char* p, int32_t width) {
  return std::string_view(p, strnlen(p, width));
}

/// The branch-free selection loop shared by all compare kernels: `lhs`/`rhs`
/// map a row index to comparable operands.
template <typename LhsFn, typename RhsFn>
int32_t CmpLoop(CompareOp op, const int32_t* sel, int32_t n, int32_t* out,
                LhsFn lhs, RhsFn rhs) {
  int32_t k = 0;
#define CLAIMS_CMP_CASE(ENUM, OP)                         \
  case CompareOp::ENUM:                                   \
    for (int32_t i = 0; i < n; ++i) {                     \
      int32_t r = sel != nullptr ? sel[i] : i;            \
      out[k] = r;                                         \
      k += static_cast<int32_t>(lhs(r) OP rhs(r));        \
    }                                                     \
    break;
  switch (op) {
    CLAIMS_CMP_CASE(kEq, ==)
    CLAIMS_CMP_CASE(kNe, !=)
    CLAIMS_CMP_CASE(kLt, <)
    CLAIMS_CMP_CASE(kLe, <=)
    CLAIMS_CMP_CASE(kGt, >)
    CLAIMS_CMP_CASE(kGe, >=)
  }
#undef CLAIMS_CMP_CASE
  return k;
}

/// out = sel \ sub, where `sub` is a sorted subset of `sel` (both ascending).
int32_t Complement(const int32_t* sel, int32_t n, const int32_t* sub,
                   int32_t m, int32_t* out) {
  int32_t k = 0, j = 0;
  for (int32_t i = 0; i < n; ++i) {
    int32_t r = sel != nullptr ? sel[i] : i;
    if (j < m && sub[j] == r) {
      ++j;
    } else {
      out[k++] = r;
    }
  }
  return k;
}

/// Merges two disjoint sorted index lists.
int32_t MergeSorted(const int32_t* a, int32_t na, const int32_t* b, int32_t nb,
                    int32_t* out) {
  int32_t i = 0, j = 0, k = 0;
  while (i < na && j < nb) out[k++] = a[i] < b[j] ? a[i++] : b[j++];
  while (i < na) out[k++] = a[i++];
  while (j < nb) out[k++] = b[j++];
  return k;
}

CompareOp FlipCompare(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    default: return op;  // Eq / Ne are symmetric.
  }
}

}  // namespace

// --- BatchPredicate ---------------------------------------------------------

struct BatchPredicate::Impl {
  struct Node {
    enum class Op {
      kAnd,
      kOr,
      kNot,
      kCmpIntLit,   // int-family column vs integer literal, exact int64
      kCmpNumLit,   // numeric column vs literal, widened double
      kCmpStrLit,   // CHAR column vs string literal, lexicographic
      kCmpIntCol,   // int-family column vs int-family column
      kCmpNumCol,   // numeric column vs numeric column, widened double
      kCmpStrCol,   // CHAR column vs CHAR column
      kYearRange,   // YEAR(date_col) vs integer literal, as a day range
      kLike,        // CHAR column (NOT) LIKE pattern
      kInIntList,   // int-family column IN all-integer list
      kInNumList,   // float column IN numeric list (double compares)
      kInStrList,   // CHAR column IN all-string list
      kScalar,      // uncompiled subtree via Expr::EvalBool
    };

    Op op;
    CompareOp cmp = CompareOp::kEq;
    int left = -1;   // child node (logic) — also the only child of kNot
    int right = -1;
    int32_t off = 0, off2 = 0;       // column byte offsets
    bool is32 = false, is32_2 = false;  // 4-byte integer loads
    DataType ctype = DataType::kInt64, ctype2 = DataType::kInt64;
    int32_t width = 0, width2 = 0;   // CHAR payload widths
    int64_t i64 = 0;
    double f64 = 0;
    std::string str;                 // string literal / LIKE pattern
    std::vector<int64_t> int_list;
    std::vector<double> num_list;
    std::vector<std::string> str_list;
    int32_t lo = 0, hi = 0;          // kYearRange day bounds [lo, hi)
    bool negated = false;
    const Expr* scalar = nullptr;
  };

  Schema schema;
  ExprPtr expr;  // owns the tree the nodes borrow from
  std::vector<Node> nodes;
  int root = -1;
  bool fully_compiled = true;

  int Add(Node n) {
    nodes.push_back(std::move(n));
    return static_cast<int>(nodes.size()) - 1;
  }

  int AddScalar(const Expr* e) {
    fully_compiled = false;
    Node n;
    n.op = Node::Op::kScalar;
    n.scalar = e;
    return Add(std::move(n));
  }

  void FillColumn(Node* n, int col, bool second) {
    const ColumnDef& c = schema.column(col);
    if (second) {
      n->off2 = schema.offset(col);
      n->is32_2 = c.type == DataType::kInt32 || c.type == DataType::kDate;
      n->ctype2 = c.type;
      n->width2 = c.char_width;
    } else {
      n->off = schema.offset(col);
      n->is32 = c.type == DataType::kInt32 || c.type == DataType::kDate;
      n->ctype = c.type;
      n->width = c.char_width;
    }
  }

  int CompileCompare(const Expr* e, CompareOp op, const Expr* l,
                     const Expr* r) {
    ExprShape ls = l->Shape();
    ExprShape rs = r->Shape();
    // Normalize "literal OP x" to "x flip(OP) literal".
    if (ls.kind == ExprShape::Kind::kLiteral &&
        rs.kind != ExprShape::Kind::kLiteral) {
      std::swap(ls, rs);
      op = FlipCompare(op);
    }

    if (ls.kind == ExprShape::Kind::kColumnRef &&
        rs.kind == ExprShape::Kind::kLiteral) {
      const ColumnDef& c = schema.column(ls.column);
      const Value& v = *rs.literal;
      Node n;
      n.cmp = op;
      FillColumn(&n, ls.column, /*second=*/false);
      if (c.type == DataType::kChar && v.is_string()) {
        n.op = Node::Op::kCmpStrLit;
        n.str = v.AsString();
        return Add(std::move(n));
      }
      if (IsIntFamily(c.type) && IsIntValue(v)) {
        n.op = Node::Op::kCmpIntLit;
        n.i64 = v.AsInt64();
        return Add(std::move(n));
      }
      if ((IsIntFamily(c.type) || c.type == DataType::kFloat64) &&
          !v.is_string()) {
        n.op = Node::Op::kCmpNumLit;
        n.f64 = v.ToDouble();
        return Add(std::move(n));
      }
      return AddScalar(e);
    }

    // YEAR(date_col) vs integer literal compiles to a day-range test:
    // YEAR(d) == y  ⇔  d ∈ [Jan 1 of y, Jan 1 of y+1).
    if (ls.kind == ExprShape::Kind::kYear &&
        rs.kind == ExprShape::Kind::kLiteral && IsIntValue(*rs.literal)) {
      int col = AsColumnRef(*ls.child);
      if (col >= 0 && (schema.column(col).type == DataType::kDate ||
                       schema.column(col).type == DataType::kInt32)) {
        int64_t y = rs.literal->AsInt64();
        Node n;
        n.op = Node::Op::kYearRange;
        n.cmp = op;
        FillColumn(&n, col, /*second=*/false);
        n.lo = DaysFromCivil(static_cast<int>(y), 1, 1);
        n.hi = DaysFromCivil(static_cast<int>(y) + 1, 1, 1);
        return Add(std::move(n));
      }
    }

    if (ls.kind == ExprShape::Kind::kColumnRef &&
        rs.kind == ExprShape::Kind::kColumnRef) {
      const ColumnDef& a = schema.column(ls.column);
      const ColumnDef& b = schema.column(rs.column);
      Node n;
      n.cmp = op;
      FillColumn(&n, ls.column, /*second=*/false);
      FillColumn(&n, rs.column, /*second=*/true);
      if (a.type == DataType::kChar && b.type == DataType::kChar) {
        n.op = Node::Op::kCmpStrCol;
        return Add(std::move(n));
      }
      if (IsIntFamily(a.type) && IsIntFamily(b.type)) {
        n.op = Node::Op::kCmpIntCol;
        return Add(std::move(n));
      }
      if (a.type != DataType::kChar && b.type != DataType::kChar) {
        n.op = Node::Op::kCmpNumCol;
        return Add(std::move(n));
      }
      return AddScalar(e);
    }

    return AddScalar(e);
  }

  int CompileBool(const Expr* e) {
    ExprShape s = e->Shape();
    switch (s.kind) {
      case ExprShape::Kind::kLogic: {
        // Compile children first; node indices are stable (vector append).
        int l = CompileBool(s.left);
        int r = CompileBool(s.right);
        Node n;
        n.op = s.logic_op == LogicOp::kAnd ? Node::Op::kAnd : Node::Op::kOr;
        n.left = l;
        n.right = r;
        return Add(std::move(n));
      }
      case ExprShape::Kind::kNot: {
        int c = CompileBool(s.child);
        Node n;
        n.op = Node::Op::kNot;
        n.left = c;
        return Add(std::move(n));
      }
      case ExprShape::Kind::kCompare:
        return CompileCompare(e, s.compare_op, s.left, s.right);
      case ExprShape::Kind::kLike: {
        int col = AsColumnRef(*s.child);
        if (col >= 0 && schema.column(col).type == DataType::kChar) {
          Node n;
          n.op = Node::Op::kLike;
          FillColumn(&n, col, /*second=*/false);
          n.str = *s.pattern;
          n.negated = s.negated;
          return Add(std::move(n));
        }
        return AddScalar(e);
      }
      case ExprShape::Kind::kInList: {
        int col = AsColumnRef(*s.child);
        if (col < 0) return AddScalar(e);
        const ColumnDef& c = schema.column(col);
        const std::vector<Value>& values = *s.in_values;
        Node n;
        FillColumn(&n, col, /*second=*/false);
        n.negated = s.negated;
        if (c.type == DataType::kChar) {
          for (const Value& v : values) {
            if (!v.is_string()) return AddScalar(e);
            n.str_list.push_back(v.AsString());
          }
          n.op = Node::Op::kInStrList;
          return Add(std::move(n));
        }
        if (IsIntFamily(c.type)) {
          for (const Value& v : values) {
            if (!IsIntValue(v)) return AddScalar(e);
            n.int_list.push_back(v.AsInt64());
          }
          n.op = Node::Op::kInIntList;
          return Add(std::move(n));
        }
        if (c.type == DataType::kFloat64) {
          for (const Value& v : values) {
            if (v.is_string()) return AddScalar(e);
            n.num_list.push_back(v.ToDouble());
          }
          n.op = Node::Op::kInNumList;
          return Add(std::move(n));
        }
        return AddScalar(e);
      }
      case ExprShape::Kind::kColumnRef: {
        // Bare column in boolean position: `col != 0`.
        const ColumnDef& c = schema.column(s.column);
        Node n;
        n.cmp = CompareOp::kNe;
        FillColumn(&n, s.column, /*second=*/false);
        if (IsIntFamily(c.type)) {
          n.op = Node::Op::kCmpIntLit;
          n.i64 = 0;
          return Add(std::move(n));
        }
        if (c.type == DataType::kFloat64) {
          n.op = Node::Op::kCmpNumLit;
          n.f64 = 0;
          return Add(std::move(n));
        }
        return AddScalar(e);
      }
      default:
        return AddScalar(e);
    }
  }

  int32_t Run(int idx, const Block& block, const int32_t* sel, int32_t n,
              int32_t* out) const {
    const Node& node = nodes[idx];
    const char* rows = n > 0 ? block.RowAt(0) : nullptr;
    const int32_t stride = block.row_size();
    auto row_ptr = [&](int32_t r) {
      return rows + static_cast<size_t>(r) * stride;
    };

    switch (node.op) {
      case Node::Op::kAnd: {
        // Sequential narrowing, in place: the right kernel reads `out` as its
        // selection while writing `out` — safe because every kernel's write
        // cursor trails its read cursor.
        int32_t n1 = Run(node.left, block, sel, n, out);
        return Run(node.right, block, out, n1, out);
      }
      case Node::Op::kOr: {
        // left matches ∪ (right matches on the complement) — mirrors the
        // scalar short-circuit: the right side only sees rows the left
        // rejected, then the two sorted disjoint lists merge.
        std::vector<int32_t> lhs(n);
        std::vector<int32_t> rest(n);
        int32_t nl = Run(node.left, block, sel, n, lhs.data());
        int32_t nc = Complement(sel, n, lhs.data(), nl, rest.data());
        int32_t nr = Run(node.right, block, rest.data(), nc, rest.data());
        return MergeSorted(lhs.data(), nl, rest.data(), nr, out);
      }
      case Node::Op::kNot: {
        std::vector<int32_t> sub(n);
        int32_t m = Run(node.left, block, sel, n, sub.data());
        return Complement(sel, n, sub.data(), m, out);
      }
      case Node::Op::kCmpIntLit:
        return CmpLoop(
            node.cmp, sel, n, out,
            [&](int32_t r) { return LoadInt(row_ptr(r) + node.off, node.is32); },
            [&](int32_t) { return node.i64; });
      case Node::Op::kCmpNumLit:
        return CmpLoop(
            node.cmp, sel, n, out,
            [&](int32_t r) { return LoadNum(row_ptr(r) + node.off, node.ctype); },
            [&](int32_t) { return node.f64; });
      case Node::Op::kCmpStrLit:
        return CmpLoop(
            node.cmp, sel, n, out,
            [&](int32_t r) { return LoadStr(row_ptr(r) + node.off, node.width); },
            [&](int32_t) { return std::string_view(node.str); });
      case Node::Op::kCmpIntCol:
        return CmpLoop(
            node.cmp, sel, n, out,
            [&](int32_t r) { return LoadInt(row_ptr(r) + node.off, node.is32); },
            [&](int32_t r) {
              return LoadInt(row_ptr(r) + node.off2, node.is32_2);
            });
      case Node::Op::kCmpNumCol:
        return CmpLoop(
            node.cmp, sel, n, out,
            [&](int32_t r) { return LoadNum(row_ptr(r) + node.off, node.ctype); },
            [&](int32_t r) {
              return LoadNum(row_ptr(r) + node.off2, node.ctype2);
            });
      case Node::Op::kCmpStrCol:
        return CmpLoop(
            node.cmp, sel, n, out,
            [&](int32_t r) { return LoadStr(row_ptr(r) + node.off, node.width); },
            [&](int32_t r) {
              return LoadStr(row_ptr(r) + node.off2, node.width2);
            });
      case Node::Op::kYearRange: {
        auto day = [&](int32_t r) {
          int32_t v;
          std::memcpy(&v, row_ptr(r) + node.off, 4);
          return v;
        };
        int32_t k = 0;
        int32_t lo = node.lo, hi = node.hi;
        switch (node.cmp) {
          case CompareOp::kEq:
            for (int32_t i = 0; i < n; ++i) {
              int32_t r = sel != nullptr ? sel[i] : i;
              out[k] = r;
              int32_t d = day(r);
              k += static_cast<int32_t>(d >= lo && d < hi);
            }
            break;
          case CompareOp::kNe:
            for (int32_t i = 0; i < n; ++i) {
              int32_t r = sel != nullptr ? sel[i] : i;
              out[k] = r;
              int32_t d = day(r);
              k += static_cast<int32_t>(d < lo || d >= hi);
            }
            break;
          case CompareOp::kLt:
            for (int32_t i = 0; i < n; ++i) {
              int32_t r = sel != nullptr ? sel[i] : i;
              out[k] = r;
              k += static_cast<int32_t>(day(r) < lo);
            }
            break;
          case CompareOp::kLe:
            for (int32_t i = 0; i < n; ++i) {
              int32_t r = sel != nullptr ? sel[i] : i;
              out[k] = r;
              k += static_cast<int32_t>(day(r) < hi);
            }
            break;
          case CompareOp::kGt:
            for (int32_t i = 0; i < n; ++i) {
              int32_t r = sel != nullptr ? sel[i] : i;
              out[k] = r;
              k += static_cast<int32_t>(day(r) >= hi);
            }
            break;
          case CompareOp::kGe:
            for (int32_t i = 0; i < n; ++i) {
              int32_t r = sel != nullptr ? sel[i] : i;
              out[k] = r;
              k += static_cast<int32_t>(day(r) >= lo);
            }
            break;
        }
        return k;
      }
      case Node::Op::kLike: {
        int32_t k = 0;
        std::string_view pattern(node.str);
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[k] = r;
          bool m = LikeMatch(LoadStr(row_ptr(r) + node.off, node.width),
                             pattern);
          k += static_cast<int32_t>(node.negated ? !m : m);
        }
        return k;
      }
      case Node::Op::kInIntList: {
        int32_t k = 0;
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[k] = r;
          int64_t v = LoadInt(row_ptr(r) + node.off, node.is32);
          bool found = false;
          for (int64_t cand : node.int_list) found |= (v == cand);
          k += static_cast<int32_t>(node.negated ? !found : found);
        }
        return k;
      }
      case Node::Op::kInNumList: {
        int32_t k = 0;
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[k] = r;
          double v = LoadNum(row_ptr(r) + node.off, node.ctype);
          bool found = false;
          for (double cand : node.num_list) found |= (v == cand);
          k += static_cast<int32_t>(node.negated ? !found : found);
        }
        return k;
      }
      case Node::Op::kInStrList: {
        int32_t k = 0;
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[k] = r;
          std::string_view v = LoadStr(row_ptr(r) + node.off, node.width);
          bool found = false;
          for (const std::string& cand : node.str_list) found |= (v == cand);
          k += static_cast<int32_t>(node.negated ? !found : found);
        }
        return k;
      }
      case Node::Op::kScalar: {
        int32_t k = 0;
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[k] = r;
          k += static_cast<int32_t>(node.scalar->EvalBool(schema, row_ptr(r)));
        }
        return k;
      }
    }
    return 0;
  }
};

BatchPredicate::BatchPredicate() : impl_(new Impl) {}
BatchPredicate::~BatchPredicate() = default;

std::unique_ptr<BatchPredicate> BatchPredicate::Compile(const Schema& schema,
                                                        ExprPtr expr) {
  std::unique_ptr<BatchPredicate> p(new BatchPredicate);
  p->impl_->schema = schema;
  p->impl_->expr = std::move(expr);
  p->impl_->root = p->impl_->CompileBool(p->impl_->expr.get());
  return p;
}

int32_t BatchPredicate::FilterBlock(const Block& block, const int32_t* sel,
                                    int32_t n, int32_t* out) const {
  if (n <= 0) return 0;
  return impl_->Run(impl_->root, block, sel, n, out);
}

bool BatchPredicate::fully_compiled() const { return impl_->fully_compiled; }

// --- BatchCompute -----------------------------------------------------------

struct BatchCompute::Impl {
  struct Node {
    enum class Op {
      kColInt,     // int-family column → int64 lane
      kColF64,     // float column → double lane
      kLitInt,
      kLitF64,
      kYear,       // YEAR(date/int32 column) → int64 lane
      kArithInt,   // exact int64 arithmetic (ArithExpr int mode)
      kArithF64,   // double arithmetic (any float operand, or division)
      kScalarInt,  // fallback Eval().AsInt64()
      kScalarF64,  // fallback Eval().ToDouble()
    };
    Op op;
    ArithOp arith = ArithOp::kAdd;
    int left = -1, right = -1;
    int32_t off = 0;
    bool is32 = false;
    int64_t i64 = 0;
    double f64 = 0;
    const Expr* scalar = nullptr;
  };

  Schema schema;
  ExprPtr expr;
  std::vector<Node> nodes;
  int root = -1;
  bool fully_compiled = true;
  // Bare column reference root (any type, CHAR included) — enables the
  // strided-copy Materialize fast path.
  int root_column = -1;

  int Add(Node n) {
    nodes.push_back(std::move(n));
    return static_cast<int>(nodes.size()) - 1;
  }

  bool IsIntLane(int idx) const {
    switch (nodes[idx].op) {
      case Node::Op::kColInt:
      case Node::Op::kLitInt:
      case Node::Op::kYear:
      case Node::Op::kArithInt:
      case Node::Op::kScalarInt:
        return true;
      default:
        return false;
    }
  }

  int AddScalar(const Expr* e) {
    fully_compiled = false;
    Node n;
    n.op = e->type() == DataType::kFloat64 ? Node::Op::kScalarF64
                                           : Node::Op::kScalarInt;
    n.scalar = e;
    return Add(std::move(n));
  }

  int CompileNum(const Expr* e) {
    ExprShape s = e->Shape();
    switch (s.kind) {
      case ExprShape::Kind::kColumnRef: {
        const ColumnDef& c = schema.column(s.column);
        Node n;
        n.off = schema.offset(s.column);
        if (IsIntFamily(c.type)) {
          n.op = Node::Op::kColInt;
          n.is32 = c.type != DataType::kInt64;
          return Add(std::move(n));
        }
        if (c.type == DataType::kFloat64) {
          n.op = Node::Op::kColF64;
          return Add(std::move(n));
        }
        return AddScalar(e);  // CHAR column in numeric position
      }
      case ExprShape::Kind::kLiteral: {
        const Value& v = *s.literal;
        Node n;
        if (IsIntValue(v)) {
          n.op = Node::Op::kLitInt;
          n.i64 = v.AsInt64();
          return Add(std::move(n));
        }
        if (v.type() == DataType::kFloat64) {
          n.op = Node::Op::kLitF64;
          n.f64 = v.AsFloat64();
          return Add(std::move(n));
        }
        return AddScalar(e);
      }
      case ExprShape::Kind::kYear: {
        int col = AsColumnRef(*s.child);
        if (col >= 0 && (schema.column(col).type == DataType::kDate ||
                         schema.column(col).type == DataType::kInt32)) {
          Node n;
          n.op = Node::Op::kYear;
          n.off = schema.offset(col);
          return Add(std::move(n));
        }
        return AddScalar(e);
      }
      case ExprShape::Kind::kArith: {
        int l = CompileNum(s.left);
        int r = CompileNum(s.right);
        Node n;
        n.arith = s.arith_op;
        n.left = l;
        n.right = r;
        if (e->type() == DataType::kFloat64) {
          n.op = Node::Op::kArithF64;
          return Add(std::move(n));
        }
        // Int mode requires both children on the int lane (guaranteed by
        // ArithExpr's type rule; be defensive about fallback-typed children).
        if (IsIntLane(l) && IsIntLane(r)) {
          n.op = Node::Op::kArithInt;
          return Add(std::move(n));
        }
        return AddScalar(e);
      }
      default:
        return AddScalar(e);
    }
  }

  void EvalI64(int idx, const Block& block, const int32_t* sel, int32_t n,
               int64_t* out) const {
    const Node& node = nodes[idx];
    const char* rows = n > 0 ? block.RowAt(0) : nullptr;
    const int32_t stride = block.row_size();
    auto row_ptr = [&](int32_t r) {
      return rows + static_cast<size_t>(r) * stride;
    };
    switch (node.op) {
      case Node::Op::kColInt:
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[i] = LoadInt(row_ptr(r) + node.off, node.is32);
        }
        break;
      case Node::Op::kLitInt:
        for (int32_t i = 0; i < n; ++i) out[i] = node.i64;
        break;
      case Node::Op::kYear:
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          int32_t days;
          std::memcpy(&days, row_ptr(r) + node.off, 4);
          int y, m, d;
          CivilFromDays(days, &y, &m, &d);
          out[i] = y;
        }
        break;
      case Node::Op::kArithInt: {
        std::vector<int64_t> a(n), b(n);
        EvalI64(node.left, block, sel, n, a.data());
        EvalI64(node.right, block, sel, n, b.data());
        switch (node.arith) {
          case ArithOp::kAdd:
            for (int32_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
            break;
          case ArithOp::kSub:
            for (int32_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
            break;
          case ArithOp::kMul:
            for (int32_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
            break;
          case ArithOp::kDiv:
            for (int32_t i = 0; i < n; ++i)
              out[i] = b[i] == 0 ? 0 : a[i] / b[i];
            break;
        }
        break;
      }
      default:  // kScalarInt (and any int-typed fallback)
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[i] = node.scalar->Eval(schema, row_ptr(r)).AsInt64();
        }
        break;
    }
  }

  void EvalF64(int idx, const Block& block, const int32_t* sel, int32_t n,
               double* out) const {
    const Node& node = nodes[idx];
    const char* rows = n > 0 ? block.RowAt(0) : nullptr;
    const int32_t stride = block.row_size();
    auto row_ptr = [&](int32_t r) {
      return rows + static_cast<size_t>(r) * stride;
    };
    switch (node.op) {
      case Node::Op::kColF64:
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          double v;
          std::memcpy(&v, row_ptr(r) + node.off, 8);
          out[i] = v;
        }
        break;
      case Node::Op::kLitF64:
        for (int32_t i = 0; i < n; ++i) out[i] = node.f64;
        break;
      case Node::Op::kArithF64: {
        std::vector<double> a(n), b(n);
        EvalF64(node.left, block, sel, n, a.data());
        EvalF64(node.right, block, sel, n, b.data());
        switch (node.arith) {
          case ArithOp::kAdd:
            for (int32_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
            break;
          case ArithOp::kSub:
            for (int32_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
            break;
          case ArithOp::kMul:
            for (int32_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
            break;
          case ArithOp::kDiv:
            for (int32_t i = 0; i < n; ++i)
              out[i] = b[i] == 0 ? 0 : a[i] / b[i];
            break;
        }
        break;
      }
      case Node::Op::kScalarF64:
        for (int32_t i = 0; i < n; ++i) {
          int32_t r = sel != nullptr ? sel[i] : i;
          out[i] = node.scalar->Eval(schema, row_ptr(r)).ToDouble();
        }
        break;
      default: {
        // Int-lane node widened: evaluate exactly, then cast — identical to
        // Value::ToDouble on the scalar path.
        std::vector<int64_t> tmp(n);
        EvalI64(idx, block, sel, n, tmp.data());
        for (int32_t i = 0; i < n; ++i) out[i] = static_cast<double>(tmp[i]);
        break;
      }
    }
  }
};

BatchCompute::BatchCompute() : impl_(new Impl) {}
BatchCompute::~BatchCompute() = default;

std::unique_ptr<BatchCompute> BatchCompute::Compile(const Schema& schema,
                                                    ExprPtr expr) {
  std::unique_ptr<BatchCompute> c(new BatchCompute);
  c->impl_->schema = schema;
  c->impl_->expr = std::move(expr);
  c->impl_->root_column = AsColumnRef(*c->impl_->expr);
  c->impl_->root = c->impl_->CompileNum(c->impl_->expr.get());
  return c;
}

void BatchCompute::EvalDouble(const Block& block, const int32_t* sel,
                              int32_t n, double* out) const {
  if (n <= 0) return;
  impl_->EvalF64(impl_->root, block, sel, n, out);
}

void BatchCompute::Materialize(const Block& block, const int32_t* sel,
                               int32_t n, const Schema& out_schema,
                               int out_col, char* out_rows) const {
  if (n <= 0) return;
  const int32_t out_stride = out_schema.row_size();
  const int32_t out_off = out_schema.offset(out_col);
  const ColumnDef& dst = out_schema.column(out_col);

  // Bare column of identical type: strided byte copy. CHAR columns rely on
  // the SetString invariant (payload NUL-padded to declared width), so the
  // raw bytes equal what strip-then-SetValue would write.
  if (impl_->root_column >= 0) {
    const ColumnDef& src = impl_->schema.column(impl_->root_column);
    if (src.type == dst.type && src.char_width == dst.char_width) {
      const int32_t w = TypeWidth(src.type, src.char_width);
      const char* in_base =
          block.RowAt(0) + impl_->schema.offset(impl_->root_column);
      const int32_t in_stride = block.row_size();
      for (int32_t i = 0; i < n; ++i) {
        int32_t r = sel != nullptr ? sel[i] : i;
        std::memcpy(out_rows + static_cast<size_t>(i) * out_stride + out_off,
                    in_base + static_cast<size_t>(r) * in_stride, w);
      }
      return;
    }
  }

  // Typed lanes for numeric destinations; full scalar fallback otherwise
  // (conversion handled by SetValue, exactly like the row-at-a-time path).
  const Expr* e = impl_->expr.get();
  if (impl_->fully_compiled && IsIntFamily(dst.type) &&
      impl_->IsIntLane(impl_->root)) {
    std::vector<int64_t> tmp(n);
    impl_->EvalI64(impl_->root, block, sel, n, tmp.data());
    const bool w32 = dst.type != DataType::kInt64;
    for (int32_t i = 0; i < n; ++i) {
      char* p = out_rows + static_cast<size_t>(i) * out_stride + out_off;
      if (w32) {
        int32_t v = static_cast<int32_t>(tmp[i]);
        std::memcpy(p, &v, 4);
      } else {
        std::memcpy(p, &tmp[i], 8);
      }
    }
    return;
  }
  if (impl_->fully_compiled && dst.type == DataType::kFloat64) {
    std::vector<double> tmp(n);
    impl_->EvalF64(impl_->root, block, sel, n, tmp.data());
    for (int32_t i = 0; i < n; ++i) {
      std::memcpy(out_rows + static_cast<size_t>(i) * out_stride + out_off,
                  &tmp[i], 8);
    }
    return;
  }
  for (int32_t i = 0; i < n; ++i) {
    int32_t r = sel != nullptr ? sel[i] : i;
    out_schema.SetValue(out_rows + static_cast<size_t>(i) * out_stride,
                        out_col, e->Eval(impl_->schema, block.RowAt(r)));
  }
}

bool BatchCompute::fully_compiled() const { return impl_->fully_compiled; }

}  // namespace claims
