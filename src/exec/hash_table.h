#ifndef CLAIMS_EXEC_HASH_TABLE_H_
#define CLAIMS_EXEC_HASH_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/macros.h"
#include "common/memory_tracker.h"
#include "common/status.h"
#include "mem/mem_source.h"
#include "storage/partition.h"
#include "storage/schema.h"
#include "storage/value.h"

namespace claims {

class SpillRun;

/// Lock-free bump allocator: entries for the shared hash tables are carved
/// out of large chunks; allocation is a CAS on the chunk offset, chunk
/// refills take a mutex. Nothing is freed until Reset() or destruction —
/// hash-table entries live exactly as long as the iterator state (paper §3:
/// state is shared, never migrated).
///
/// Chunks come from the MemSource: recycled through the BlockPool and
/// charged against the owning query's budget when one is attached. A refused
/// chunk makes Allocate return nullptr — callers surface that as a fallible
/// insert so the operator can run the degradation ladder (docs/MEMORY.md).
class Arena {
 public:
  explicit Arena(size_t chunk_bytes = 1 << 20, MemoryTracker* memory = nullptr)
      : Arena(chunk_bytes, MemSource{nullptr, memory, nullptr}) {}
  Arena(size_t chunk_bytes, MemSource source)
      : chunk_bytes_(chunk_bytes), source_(source) {}
  ~Arena();
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(Arena);

  /// Thread-safe; 8-byte aligned. nullptr when the memory source refuses
  /// (query over budget / pool pressure cap) — never throws, never blocks.
  char* Allocate(size_t bytes);

  /// Returns every chunk to the memory source (pool recycling instead of
  /// global-allocator churn) and rewinds to empty. NOT thread-safe: caller
  /// must be the exclusive owner with no outstanding pointers into the arena.
  void Reset();

  int64_t allocated_bytes() const {
    return allocated_.load(std::memory_order_relaxed);
  }

 private:
  /// One bump region. `handle.data`/`limit` are immutable after construction
  /// — only the cursor moves — so the fast path never pairs a cursor from one
  /// chunk with the limit of another (the torn-read bug a separate atomic
  /// limit had: with unrelated heap addresses, that comparison could hand out
  /// memory past the real chunk end).
  struct Chunk {
    PoolAlloc handle;           ///< backing storage (pool or direct new[])
    char* limit;                ///< handle.data + handle.bytes
    std::atomic<char*> cursor;  ///< next free byte
  };

  void ReleaseChunksLocked();

  size_t chunk_bytes_;
  MemSource source_;
  std::mutex refill_mu_;
  std::vector<std::unique_ptr<Chunk>> chunks_;
  /// Current bump region; release-published by the refiller, acquire-loaded
  /// by allocators so the chunk memory is visible before any payload write.
  std::atomic<Chunk*> current_{nullptr};
  std::atomic<int64_t> allocated_{0};
};

/// Compares the key columns of rows that may live in different schemas (the
/// build row vs the probe row of a join). Key column lists must be
/// type-compatible (enforced by the binder).
class KeyComparator {
 public:
  KeyComparator(const Schema* left_schema, std::vector<int> left_cols,
                const Schema* right_schema, std::vector<int> right_cols);

  bool Equal(const char* left_row, const char* right_row) const;

 private:
  const Schema* left_schema_;
  const Schema* right_schema_;
  std::vector<int> left_cols_;
  std::vector<int> right_cols_;
};

/// Concurrent multi-map for the hash-join build side (appendix Alg. 6):
/// fixed bucket array, chained entries, **CAS head insertion** so all worker
/// threads build in parallel without locks; probe is read-only and needs no
/// synchronization at all.
class JoinHashTable {
 public:
  JoinHashTable(const Schema* build_schema, std::vector<int> build_keys,
                size_t num_buckets, MemoryTracker* memory = nullptr);
  JoinHashTable(const Schema* build_schema, std::vector<int> build_keys,
                size_t num_buckets, MemSource source);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(JoinHashTable);

  /// Copies `row` into the arena and links it; thread-safe. false when the
  /// arena's memory source refused the bytes (query over budget).
  bool Insert(const char* row);

  /// Same, with the key hash precomputed (batch build path: the whole block
  /// is hashed column-at-a-time first). Must be the HashRowKeys hash.
  bool Insert(const char* row, uint64_t hash);

  /// Invokes `fn(const char* build_row)` for every build row whose key equals
  /// the probe row's key.
  template <typename Fn>
  void ForEachMatch(const Schema& probe_schema, const char* probe_row,
                    const std::vector<int>& probe_keys, Fn&& fn) const {
    uint64_t h = HashRowKeys(probe_schema, probe_row, probe_keys);
    KeyComparator cmp(build_schema_, build_keys_, &probe_schema, probe_keys);
    ForEachMatchHashed(h, cmp, probe_row, fn);
  }

  /// Vectorized-probe core: hash and comparator are supplied by the caller,
  /// so a probe block hashes once (column-at-a-time) and reuses one hoisted
  /// KeyComparator instead of constructing one — two vector copies — per row.
  template <typename Fn>
  void ForEachMatchHashed(uint64_t h, const KeyComparator& cmp,
                          const char* probe_row, Fn&& fn) const {
    for (const Entry* e =
             buckets_[h & bucket_mask_].load(std::memory_order_acquire);
         e != nullptr; e = e->next) {
      if (e->hash == h && cmp.Equal(e->row(), probe_row)) {
        fn(e->row());
      }
    }
  }

  int64_t size() const { return size_.load(std::memory_order_relaxed); }
  int64_t bytes() const { return arena_.allocated_bytes(); }

 private:
  struct Entry {
    Entry* next;
    uint64_t hash;
    char* row() { return reinterpret_cast<char*>(this + 1); }
    const char* row() const { return reinterpret_cast<const char*>(this + 1); }
  };

  const Schema* build_schema_;
  std::vector<int> build_keys_;
  /// Bucket count is rounded up to a power of two so the per-probe index is
  /// a mask, not an integer division.
  std::vector<std::atomic<Entry*>> buckets_;
  size_t bucket_mask_;
  Arena arena_;
  std::atomic<int64_t> size_{0};
};

/// Aggregate functions supported by the engine.
enum class AggFn { kCount, kSum, kAvg, kMin, kMax };

const char* AggFnName(AggFn fn);

/// Concurrent group-by hash table for **shared aggregation** (appendix
/// Alg. 7): group entries carry numeric accumulator slots updated under a
/// per-entry spinlock; bucket chains grow via per-bucket insert locks with
/// lock-free lookup. With few groups, all threads hammer the same entry
/// locks — precisely the contention that makes shared aggregation scale
/// poorly on low-cardinality group-bys (paper Fig. 8b, S-Q3).
class AggHashTable {
 public:
  /// `group_schema` describes the key columns layout (a row holding just the
  /// group-by columns); `num_aggs` accumulator pairs (sum, count) follow.
  AggHashTable(Schema group_schema, int num_aggs, size_t num_buckets,
               MemoryTracker* memory = nullptr);
  AggHashTable(Schema group_schema, int num_aggs, size_t num_buckets,
               MemSource source);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(AggHashTable);

  struct AggState {
    double sum = 0;       // SUM / running MIN / running MAX value
    int64_t count = 0;    // COUNT; 0 marks MIN/MAX as not-yet-set
  };

  /// Finds or creates the group of `group_row` and applies the update under
  /// the entry lock: for each aggregate i, fold `values[i]` using `fns[i]`.
  /// COUNT folds +1 per call scaled by `count_weight` (used when merging
  /// partial states). false when a new group could not be allocated (query
  /// over budget) — no partial fold happens.
  bool Update(const char* group_row, const std::vector<AggFn>& fns,
              const double* values, const int64_t* count_weights);

  /// Same, with the group-key hash precomputed (batch fold path hashes the
  /// materialized group rows column-at-a-time). Must be the HashRowKeys hash
  /// over all group columns. `exclusive` skips the per-entry spinlock; pass
  /// true only when the caller is the sole thread touching this table (a
  /// worker-private table of independent/hybrid aggregation).
  bool Update(const char* group_row, uint64_t hash,
              const std::vector<AggFn>& fns, const double* values,
              const int64_t* count_weights, bool exclusive = false);

  /// Batch fold: folds rows `[0..n)` of a packed group-row buffer
  /// (`group_rows + i * stride`) with precomputed hashes. `arg_cols[a]` is a
  /// per-row value vector, or null to fold 0.0 (COUNT(*)); every fold carries
  /// count weight 1. Equivalent to n Update calls, with the per-row call and
  /// argument-marshalling overhead hoisted out of the loop. Stops and returns
  /// false at the first row whose group cannot be allocated; rows before it
  /// are folded (re-folding the block after a spill would double-count —
  /// callers spill-and-retry with `resume` = rows already folded).
  bool UpdateBatch(const char* group_rows, int32_t stride,
                   const uint64_t* hashes, int32_t n,
                   const std::vector<AggFn>& fns, const double* const* arg_cols,
                   bool exclusive, int32_t* folded = nullptr);

  /// Iterates all groups: fn(const char* group_row, const AggState* states).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const auto& bucket : buckets_) {
      for (const Entry* e = bucket.head.load(std::memory_order_acquire);
           e != nullptr; e = e->next) {
        fn(e->row(group_row_size_), e->states(group_row_size_, num_aggs_));
      }
    }
  }

  /// Serializes every group into a cold-tier run:
  ///   [int32 group_row_size][int32 num_aggs][int64 group_count]
  ///   then per group: group_row bytes + AggState x num_aggs.
  /// Caller guarantees no concurrent Update (spill happens on the owning
  /// worker's private table, or under the snapshot lock).
  Status SerializeTo(SpillRun* run) const;

  /// Merges a serialized run (SpillRun::ReadAll bytes) into `into` with the
  /// same fold rules as a live merge: values = partial sums / running
  /// min-max, weights = partial counts. kResourceExhausted when `into`
  /// cannot allocate a group; kInternal on a malformed run.
  static Status MergeSerialized(const char* data, size_t bytes,
                                const std::vector<AggFn>& fns,
                                AggHashTable* into);

  int64_t size() const { return size_.load(std::memory_order_relaxed); }
  int64_t bytes() const { return arena_.allocated_bytes(); }
  const Schema& group_schema() const { return group_schema_; }
  int num_aggs() const { return num_aggs_; }

 private:
  struct Entry {
    Entry* next;
    uint64_t hash;
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    // layout: [group_row bytes][AggState x num_aggs]
    char* row(int group_size) {
      return reinterpret_cast<char*>(this + 1);
      (void)group_size;
    }
    const char* row(int group_size) const {
      (void)group_size;
      return reinterpret_cast<const char*>(this + 1);
    }
    AggState* states(int group_size, int) {
      return reinterpret_cast<AggState*>(
          reinterpret_cast<char*>(this + 1) + AlignUp(group_size));
    }
    const AggState* states(int group_size, int) const {
      return reinterpret_cast<const AggState*>(
          reinterpret_cast<const char*>(this + 1) + AlignUp(group_size));
    }
    static int AlignUp(int n) { return (n + 7) & ~7; }
  };

  struct Bucket {
    std::atomic<Entry*> head{nullptr};
    std::atomic_flag insert_lock = ATOMIC_FLAG_INIT;
  };

  /// nullptr when the arena refused the entry (over budget); the bucket
  /// insert lock is released before returning, so other threads proceed.
  Entry* FindOrCreate(const char* group_row, uint64_t hash);

  Schema group_schema_;
  std::vector<int> all_group_cols_;
  /// Hoisted group-key comparator: constructing one per FindOrCreate (two
  /// vector copies each) dominated low-cardinality folds.
  KeyComparator group_cmp_;
  int group_row_size_;
  int num_aggs_;
  /// Power-of-two sized (rounded up in the constructor): bucket selection is
  /// a mask, not a division.
  std::vector<Bucket> buckets_;
  size_t bucket_mask_;
  Arena arena_;
  std::atomic<int64_t> size_{0};
};

/// Folds one observation into an AggState under the caller's lock.
inline void FoldAgg(AggFn fn, double value, int64_t count_weight,
                    AggHashTable::AggState* state) {
  switch (fn) {
    case AggFn::kCount:
      state->count += count_weight;
      break;
    case AggFn::kSum:
    case AggFn::kAvg:
      state->sum += value;
      state->count += count_weight;
      break;
    case AggFn::kMin:
      if (state->count == 0 || value < state->sum) state->sum = value;
      state->count += count_weight;
      break;
    case AggFn::kMax:
      if (state->count == 0 || value > state->sum) state->sum = value;
      state->count += count_weight;
      break;
  }
}

}  // namespace claims

#endif  // CLAIMS_EXEC_HASH_TABLE_H_
