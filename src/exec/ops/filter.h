#ifndef CLAIMS_EXEC_OPS_FILTER_H_
#define CLAIMS_EXEC_OPS_FILTER_H_

#include <memory>

#include "core/barrier.h"
#include "core/iterator.h"
#include "exec/expr/batch_expr.h"
#include "exec/expr/expr.h"

namespace claims {

/// Predicate filter — a non-blocking iterator whose state (the predicate) is
/// initialized by the first arriving worker (appendix A.2.3); Next is
/// read-only on state and therefore needs no synchronization. Output blocks
/// inherit the input block's sequence number and visit-rate tail.
///
/// A fully filtered input block still comes out: as an **empty watermark
/// block** carrying the input's sequence number, so the order-preserving
/// DataBuffer learns the sequence was consumed and the merge cannot stall at
/// low selectivity (the elastic worker converts it to a watermark advance
/// instead of enqueuing it).
///
/// In batch kernel mode (the default) the predicate is compiled once into
/// selection-vector kernels (see docs/VECTORIZATION.md); survivors are
/// gathered with one memcpy per row instead of a virtual Eval per row.
class FilterIterator : public Iterator {
 public:
  FilterIterator(std::unique_ptr<Iterator> child, const Schema* schema,
                 ExprPtr predicate);

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;
  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

 private:
  std::unique_ptr<Iterator> child_;
  const Schema* schema_;
  ExprPtr predicate_;
  std::unique_ptr<BatchPredicate> batch_pred_;  ///< null in scalar mode
  DynamicBarrier open_barrier_;
  FirstCallerGate init_gate_;
};

/// Projection: computes `exprs` over input rows into rows of `output_schema`.
/// Non-blocking and stateless like filter.
class ProjectIterator : public Iterator {
 public:
  ProjectIterator(std::unique_ptr<Iterator> child, const Schema* input_schema,
                  Schema output_schema, std::vector<ExprPtr> exprs);

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;
  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

  const Schema& output_schema() const { return output_schema_; }

 private:
  std::unique_ptr<Iterator> child_;
  const Schema* input_schema_;
  Schema output_schema_;
  std::vector<ExprPtr> exprs_;
  /// Fast path: column indexes when every expr is a bare column ref.
  std::vector<int> plain_cols_;
  bool all_plain_ = false;
};

}  // namespace claims

#endif  // CLAIMS_EXEC_OPS_FILTER_H_
