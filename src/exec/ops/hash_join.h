#ifndef CLAIMS_EXEC_OPS_HASH_JOIN_H_
#define CLAIMS_EXEC_OPS_HASH_JOIN_H_

#include <memory>
#include <vector>

#include "core/barrier.h"
#include "core/iterator.h"
#include "exec/expr/batch_expr.h"
#include "exec/hash_table.h"
#include "mem/query_budget.h"

namespace claims {

/// Equi hash join — a pipeline breaker (appendix Alg. 6).
///
/// Open() drains the **left** (build) child: every worker thread pulls build
/// blocks and CAS-inserts tuples into the shared JoinHashTable in parallel;
/// a dynamic barrier separates build from probe so that no worker probes a
/// half-built table. Workers that receive a terminate request mid-build
/// deregister from the barrier and unwind (shrink); workers expanded
/// mid-build register and join the build immediately (state sharing, §3).
///
/// Next() probes with **right**-child blocks — read-only on the table, no
/// synchronization. Output rows are [left columns | right columns]; the
/// planner projects afterwards.
class HashJoinIterator : public Iterator {
 public:
  struct Spec {
    const Schema* build_schema = nullptr;
    const Schema* probe_schema = nullptr;
    std::vector<int> build_keys;
    std::vector<int> probe_keys;
    /// Bucket count; 0 → sized from build-side estimate at first use.
    size_t num_buckets = 1 << 16;
    MemoryTracker* memory = nullptr;
    /// Block pool + binding query ledger the build arena draws from. A build
    /// insert the ledger refuses fails the build with kError and rejected()
    /// latched — join builds do not spill (docs/MEMORY.md); the executor
    /// surfaces kResourceExhausted.
    BlockPool* pool = nullptr;
    QueryBudget* budget = nullptr;
  };

  HashJoinIterator(std::unique_ptr<Iterator> build_child,
                   std::unique_ptr<Iterator> probe_child, Spec spec);

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;
  int SubtreeSize() const override {
    return 1 + build_child_->SubtreeSize() + probe_child_->SubtreeSize();
  }

  const Schema& output_schema() const { return output_schema_; }
  int64_t build_rows() const { return table_.size(); }

 private:
  std::unique_ptr<Iterator> build_child_;
  std::unique_ptr<Iterator> probe_child_;
  Spec spec_;
  Schema output_schema_;
  JoinHashTable table_;
  /// Hoisted build-vs-probe key comparator: constructing one per probe row
  /// (two vector copies each) dominated the scalar probe loop.
  KeyComparator probe_cmp_;
  /// Batch kernels on (the default; off under CLAIMS_SCALAR_KERNELS=1):
  /// build and probe blocks are hashed column-at-a-time in one pass.
  bool batch_;
  DynamicBarrier build_barrier_;
};

/// Builds the concatenated [left | right] schema of a join, prefixing
/// duplicate column names with the side index.
Schema JoinOutputSchema(const Schema& left, const Schema& right);

}  // namespace claims

#endif  // CLAIMS_EXEC_OPS_HASH_JOIN_H_
