#ifndef CLAIMS_EXEC_OPS_SCAN_H_
#define CLAIMS_EXEC_OPS_SCAN_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/barrier.h"
#include "core/iterator.h"
#include "core/metrics.h"
#include "exec/expr/batch_expr.h"
#include "exec/expr/expr.h"
#include "storage/table.h"

namespace claims {

/// Table-partition scan — a pipeline/stage beginner (appendix Alg. 3).
///
/// All worker threads share one read cursor advanced with an atomic
/// fetch-add, so expansion/shrinkage needs no repartitioning of the input.
/// Emitted blocks are fresh copies of the storage blocks (storage stays
/// immutable) tagged with dense sequence numbers in storage order — the
/// numbering that order-preserving elastic iterators merge on (§3.2) — and
/// with the visit-rate tail of an input-group segment (V = 1, §4.3).
///
/// In the NUMA-aware variant the table partition is conceptually split into
/// per-socket slices; a worker prefers blocks of its own socket's slice and
/// steals from other slices only when its own is exhausted.
class ScanIterator : public Iterator {
 public:
  struct Options {
    /// Simulated NUMA sockets the partition is striped over (1 = flat).
    int num_sockets = 1;
    /// Optional pushed-down predicate: rows are filtered during the
    /// copy-out of the storage block (one pass, no intermediate block).
    /// A fully filtered storage block still emits an empty watermark block
    /// so the order-preserving merge sees its sequence number.
    ExprPtr predicate;
  };

  ScanIterator(const TablePartition* partition, const Schema* schema,
               Options options);
  ScanIterator(const TablePartition* partition, const Schema* schema)
      : ScanIterator(partition, schema, Options()) {}

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;

 private:
  /// Claims the next unread block index on `socket`, or -1 when exhausted.
  int ClaimFrom(int socket);

  const TablePartition* partition_;
  const Schema* schema_;
  Options options_;
  std::unique_ptr<BatchPredicate> batch_pred_;  ///< compiled pushdown filter
  /// Per-socket cursors over an interleaved striping of the block list.
  std::vector<std::unique_ptr<std::atomic<int>>> cursors_;
  DynamicBarrier open_barrier_;
  FirstCallerGate init_gate_;
};

}  // namespace claims

#endif  // CLAIMS_EXEC_OPS_SCAN_H_
