#ifndef CLAIMS_EXEC_OPS_PROFILING_ITERATOR_H_
#define CLAIMS_EXEC_OPS_PROFILING_ITERATOR_H_

#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "common/macros.h"
#include "core/iterator.h"

namespace claims {

/// Transparent per-operator time attribution: wraps one Iterator and
/// accumulates the wall time every elastic worker spends inside its
/// Open/Next/Close calls, emitting a single kOperator span at Close. The
/// Executor inserts one wrapper per plan operator **only when the global
/// QueryProfiler is armed** — the disarmed hot path has no wrapper at all,
/// no virtual-call overhead, nothing (the fig09 branch-cheapness claim is
/// about the armed-but-unscraped path, which costs two clock reads and a few
/// relaxed atomics per Next).
///
/// Time model: `busy_ns` sums call durations across workers, so it is
/// CPU-flavored inclusive time (can exceed the wall interval when several
/// workers drive the subtree). A child wrapper's calls nest inside the
/// parent's, so the assembler's exclusive = inclusive − Σ children telescopes
/// back to the root's inclusive time per segment.
class ProfilingIterator : public Iterator {
 public:
  struct Identity {
    uint64_t query_id = 0;
    std::string op_name;  ///< e.g. "scan(lineitem)", "hash-join"
    std::string segment;  ///< owning segment instance, e.g. "S1@n0"
    int node = 0;
    /// Pre-order position in the segment's operator tree; parent_op = -1
    /// marks the segment root.
    int op_id = -1;
    int parent_op = -1;
  };

  ProfilingIterator(std::unique_ptr<Iterator> child, Identity identity)
      : child_(std::move(child)), identity_(std::move(identity)) {}
  ~ProfilingIterator() override;

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(ProfilingIterator);

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;

  /// Transparent: the wrapper must not change Fig. 9's per-iterator overhead
  /// accounting or any depth-derived behavior.
  int SubtreeSize() const override { return child_->SubtreeSize(); }

  Iterator* child() { return child_.get(); }

 private:
  /// CAS-min/max over concurrent workers.
  void NoteInterval(int64_t start_ns, int64_t end_ns);
  /// Emits the kOperator span exactly once (Close, or destructor fallback).
  void EmitSpan();

  std::unique_ptr<Iterator> child_;
  Identity identity_;

  std::atomic<int64_t> busy_ns_{0};
  std::atomic<int64_t> calls_{0};
  std::atomic<int64_t> rows_{0};
  std::atomic<int64_t> first_start_ns_{INT64_MAX};
  std::atomic<int64_t> last_end_ns_{0};
  std::atomic<bool> emitted_{false};
};

}  // namespace claims

#endif  // CLAIMS_EXEC_OPS_PROFILING_ITERATOR_H_
