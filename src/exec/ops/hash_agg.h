#ifndef CLAIMS_EXEC_OPS_HASH_AGG_H_
#define CLAIMS_EXEC_OPS_HASH_AGG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/barrier.h"
#include "core/context_pool.h"
#include "core/iterator.h"
#include "exec/expr/batch_expr.h"
#include "exec/expr/expr.h"
#include "exec/hash_table.h"
#include "mem/query_budget.h"
#include "mem/spill.h"

namespace claims {

/// Hash aggregation — a pipeline breaker (appendix Alg. 7) with the paper's
/// two aggregation strategies:
///
///  * **kShared**: all workers fold tuples directly into one global
///    AggHashTable. Fast for large group-by cardinalities; per-entry lock
///    contention makes it scale poorly when groups are few (Fig. 8b, S-Q3).
///  * **kIndependent / kHybrid**: each worker aggregates into a *private*
///    table (acquired from the context-reuse pool in core mode, §3.2(1)),
///    merged into the global table at build end. kHybrid additionally
///    flushes the private table whenever it exceeds `hybrid_max_groups`,
///    bounding per-worker memory on large cardinalities.
///
/// A terminating worker parks its private table in the context pool without
/// flushing (short shrinkage delay); the partial results are folded in by
/// the snapshot builder — the first Next() caller, after the build barrier
/// has opened but before anything is emitted — so no tuple is ever lost
/// across expand/shrink cycles and the flush cannot race the emit path.
class HashAggIterator : public Iterator {
 public:
  enum class Mode { kShared, kIndependent, kHybrid };

  struct Aggregate {
    AggFn fn;
    ExprPtr arg;  ///< null for COUNT(*)
    std::string name;
  };

  struct Spec {
    const Schema* input_schema = nullptr;
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::vector<Aggregate> aggregates;
    Mode mode = Mode::kShared;
    size_t num_buckets = 1 << 14;
    size_t hybrid_max_groups = 1 << 14;
    MemoryTracker* memory = nullptr;
    /// Block pool + binding query ledger the table arenas draw from. When the
    /// ledger refuses a fold into a worker-*private* table, that table is
    /// spilled to a cold SpillRun and the fold retried against a fresh table
    /// (degradation ladder, docs/MEMORY.md); spilled runs are merged back in
    /// by the snapshot builder. A refusal on the *shared* table (or during
    /// restore) is terminal: rejected() is latched and the segment fails,
    /// which the executor maps to kResourceExhausted.
    BlockPool* pool = nullptr;
    QueryBudget* budget = nullptr;
  };

  HashAggIterator(std::unique_ptr<Iterator> child, Spec spec);

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;
  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

  const Schema& output_schema() const { return output_schema_; }
  int64_t num_groups() const { return global_.size(); }
  const ContextPool& context_pool() const { return context_pool_; }

  /// Cold runs produced by pressure-driven spills and not yet restored.
  size_t spill_run_count() {
    std::lock_guard<std::mutex> lock(spill_mu_);
    return spill_runs_.size();
  }

 private:
  struct PrivateAggContext : IteratorContext {
    std::unique_ptr<AggHashTable> table;
  };

  /// Computes the group row + aggregate inputs of `row` and folds them into
  /// `table`. false when the table could not allocate the group (ledger
  /// refusal) — nothing was folded.
  bool FoldRow(const char* row, AggHashTable* table, char* group_scratch);

  /// Batch fold (kernel mode kBatch): materializes all group rows of `block`,
  /// hashes them column-at-a-time, evaluates every aggregate argument as a
  /// double vector, then updates the table once per row with the precomputed
  /// hash — no per-row virtual Eval, no per-row HashRowKeys. `exclusive`
  /// means `table` is private to the calling worker, so the per-entry
  /// spinlock is skipped. Folds rows `[start..n)`; on a ledger refusal
  /// returns false with `*folded` = rows folded past `start` (the caller
  /// spills and resumes at start + *folded).
  bool FoldBlock(const Block& block, AggHashTable* table, bool exclusive,
                 int32_t start, int32_t* folded);

  /// Folds one input block into `*sink`, riding the degradation ladder on a
  /// ledger refusal: if the sink is the worker-private table, spill it to a
  /// cold run, point `*sink` at a fresh table, and resume where the fold
  /// stopped. false when degradation is exhausted (shared table refused, a
  /// fresh empty table refused, or the spill itself failed) — the build must
  /// fail.
  bool ConsumeBlock(const Block& block, PrivateAggContext* priv,
                    AggHashTable** sink, bool privately, char* group_scratch);

  /// Serializes `priv`'s table into a cold SpillRun (charged bytes refunded
  /// by the retired arena) and replaces it with a fresh empty table.
  bool SpillPrivate(PrivateAggContext* priv);

  /// Folds `block`'s visit rate into the running row-weighted average that
  /// emitted blocks carry (the downstream scalability-vector estimate must
  /// not see the default 1.0 after an aggregation).
  void ObserveVisitRate(const Block& block);

  /// Merges every (group, state) of `src` into the global table. false when
  /// the global table refused a group — terminal: ForEach cannot resume, and
  /// re-merging a partially folded source would double-count.
  bool MergeInto(const AggHashTable& src);

  /// Builds the sorted snapshot emitted by Next (first caller only).
  void SnapshotGroups();

  std::unique_ptr<Iterator> child_;
  Spec spec_;
  Schema group_schema_;
  Schema output_schema_;
  std::vector<AggFn> fns_;
  std::vector<int> all_group_cols_;  ///< 0..num_groups-1, for batch hashing
  /// Batch-compiled group-key and aggregate-argument expressions (empty in
  /// scalar kernel mode; agg entry is null for COUNT(*)).
  std::vector<std::unique_ptr<BatchCompute>> group_computes_;
  std::vector<std::unique_ptr<BatchCompute>> agg_computes_;
  bool batch_ = false;
  AggHashTable global_;
  ContextPool context_pool_;
  DynamicBarrier build_barrier_;

  /// Row-weighted average visit rate of consumed input, stamped onto emitted
  /// blocks (accumulated during the build, read by Next after the barrier).
  std::mutex rate_mu_;
  double rate_weighted_sum_ = 0;
  int64_t rate_rows_ = 0;

  /// Cold tier: serialized private tables evicted under memory pressure.
  /// Merged back into global_ by the snapshot builder (transparent re-read).
  std::mutex spill_mu_;
  std::vector<std::unique_ptr<SpillRun>> spill_runs_;
  /// Latched when restoring a spilled run (or folding a parked table) into
  /// global_ fails; Next() reports kError instead of a partial result.
  std::atomic<bool> restore_failed_{false};

  std::mutex snapshot_mu_;
  /// Release-published by the snapshot builder (under snapshot_mu_) so the
  /// lock-free fast path in Next() sees a fully built groups_ vector.
  std::atomic<bool> snapshot_ready_{false};
  std::vector<std::pair<const char*, const AggHashTable::AggState*>> groups_;
  std::atomic<size_t> emit_cursor_{0};
};

/// Result column type of an aggregate over `arg_type`.
DataType AggOutputType(AggFn fn, DataType arg_type);

}  // namespace claims

#endif  // CLAIMS_EXEC_OPS_HASH_AGG_H_
