#ifndef CLAIMS_EXEC_OPS_HASH_AGG_H_
#define CLAIMS_EXEC_OPS_HASH_AGG_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/barrier.h"
#include "core/context_pool.h"
#include "core/iterator.h"
#include "exec/expr/batch_expr.h"
#include "exec/expr/expr.h"
#include "exec/hash_table.h"

namespace claims {

/// Hash aggregation — a pipeline breaker (appendix Alg. 7) with the paper's
/// two aggregation strategies:
///
///  * **kShared**: all workers fold tuples directly into one global
///    AggHashTable. Fast for large group-by cardinalities; per-entry lock
///    contention makes it scale poorly when groups are few (Fig. 8b, S-Q3).
///  * **kIndependent / kHybrid**: each worker aggregates into a *private*
///    table (acquired from the context-reuse pool in core mode, §3.2(1)),
///    merged into the global table at build end. kHybrid additionally
///    flushes the private table whenever it exceeds `hybrid_max_groups`,
///    bounding per-worker memory on large cardinalities.
///
/// A terminating worker parks its private table in the context pool without
/// flushing (short shrinkage delay); the partial results are folded in by
/// the snapshot builder — the first Next() caller, after the build barrier
/// has opened but before anything is emitted — so no tuple is ever lost
/// across expand/shrink cycles and the flush cannot race the emit path.
class HashAggIterator : public Iterator {
 public:
  enum class Mode { kShared, kIndependent, kHybrid };

  struct Aggregate {
    AggFn fn;
    ExprPtr arg;  ///< null for COUNT(*)
    std::string name;
  };

  struct Spec {
    const Schema* input_schema = nullptr;
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> group_names;
    std::vector<Aggregate> aggregates;
    Mode mode = Mode::kShared;
    size_t num_buckets = 1 << 14;
    size_t hybrid_max_groups = 1 << 14;
    MemoryTracker* memory = nullptr;
  };

  HashAggIterator(std::unique_ptr<Iterator> child, Spec spec);

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;
  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

  const Schema& output_schema() const { return output_schema_; }
  int64_t num_groups() const { return global_.size(); }
  const ContextPool& context_pool() const { return context_pool_; }

 private:
  struct PrivateAggContext : IteratorContext {
    std::unique_ptr<AggHashTable> table;
  };

  /// Computes the group row + aggregate inputs of `row` and folds them into
  /// `table`.
  void FoldRow(const char* row, AggHashTable* table, char* group_scratch);

  /// Batch fold (kernel mode kBatch): materializes all group rows of `block`,
  /// hashes them column-at-a-time, evaluates every aggregate argument as a
  /// double vector, then updates the table once per row with the precomputed
  /// hash — no per-row virtual Eval, no per-row HashRowKeys. `exclusive`
  /// means `table` is private to the calling worker, so the per-entry
  /// spinlock is skipped.
  void FoldBlock(const Block& block, AggHashTable* table, bool exclusive);

  /// Folds `block`'s visit rate into the running row-weighted average that
  /// emitted blocks carry (the downstream scalability-vector estimate must
  /// not see the default 1.0 after an aggregation).
  void ObserveVisitRate(const Block& block);

  /// Merges every (group, state) of `src` into the global table.
  void MergeInto(const AggHashTable& src);

  /// Builds the sorted snapshot emitted by Next (first caller only).
  void SnapshotGroups();

  std::unique_ptr<Iterator> child_;
  Spec spec_;
  Schema group_schema_;
  Schema output_schema_;
  std::vector<AggFn> fns_;
  std::vector<int> all_group_cols_;  ///< 0..num_groups-1, for batch hashing
  /// Batch-compiled group-key and aggregate-argument expressions (empty in
  /// scalar kernel mode; agg entry is null for COUNT(*)).
  std::vector<std::unique_ptr<BatchCompute>> group_computes_;
  std::vector<std::unique_ptr<BatchCompute>> agg_computes_;
  bool batch_ = false;
  AggHashTable global_;
  ContextPool context_pool_;
  DynamicBarrier build_barrier_;

  /// Row-weighted average visit rate of consumed input, stamped onto emitted
  /// blocks (accumulated during the build, read by Next after the barrier).
  std::mutex rate_mu_;
  double rate_weighted_sum_ = 0;
  int64_t rate_rows_ = 0;

  std::mutex snapshot_mu_;
  /// Release-published by the snapshot builder (under snapshot_mu_) so the
  /// lock-free fast path in Next() sees a fully built groups_ vector.
  std::atomic<bool> snapshot_ready_{false};
  std::vector<std::pair<const char*, const AggHashTable::AggState*>> groups_;
  std::atomic<size_t> emit_cursor_{0};
};

/// Result column type of an aggregate over `arg_type`.
DataType AggOutputType(AggFn fn, DataType arg_type);

}  // namespace claims

#endif  // CLAIMS_EXEC_OPS_HASH_AGG_H_
