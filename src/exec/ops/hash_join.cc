#include "exec/ops/hash_join.h"

#include <algorithm>
#include <cstring>

namespace claims {

Schema JoinOutputSchema(const Schema& left, const Schema& right) {
  std::vector<ColumnDef> cols;
  cols.reserve(left.num_columns() + right.num_columns());
  for (const ColumnDef& c : left.columns()) cols.push_back(c);
  for (const ColumnDef& c : right.columns()) {
    ColumnDef copy = c;
    if (left.FindColumn(c.name) >= 0) copy.name = "r_" + copy.name;
    cols.push_back(copy);
  }
  return Schema(std::move(cols));
}

HashJoinIterator::HashJoinIterator(std::unique_ptr<Iterator> build_child,
                                   std::unique_ptr<Iterator> probe_child,
                                   Spec spec)
    : build_child_(std::move(build_child)),
      probe_child_(std::move(probe_child)),
      spec_(spec),
      output_schema_(JoinOutputSchema(*spec.build_schema, *spec.probe_schema)),
      table_(spec.build_schema, spec.build_keys, spec.num_buckets,
             MemSource{spec.pool, spec.memory, spec.budget}),
      probe_cmp_(spec_.build_schema, spec_.build_keys, spec_.probe_schema,
                 spec_.probe_keys),
      batch_(CurrentKernelMode() == KernelMode::kBatch) {}

NextResult HashJoinIterator::Open(WorkerContext* ctx) {
  bool already_open = build_barrier_.Register();
  NextResult opened = build_child_->Open(ctx);
  if (opened != NextResult::kSuccess) {
    if (!already_open) build_barrier_.Deregister();
    return opened;
  }
  // Parallel build: every worker drains build blocks into the shared table.
  while (true) {
    BlockPtr block;
    NextResult r = build_child_->Next(ctx, &block);
    if (r == NextResult::kEndOfFile) break;
    if (r != NextResult::kSuccess) {
      // kTerminated (shrink) and kError (broken stream) both unwind and are
      // re-raised as-is; deregistering keeps the barrier honest either way.
      if (!already_open) build_barrier_.Deregister();
      return r;
    }
    const int32_t nb = block->num_rows();
    bool inserted = true;
    if (batch_ && nb > 0) {
      // Hash the whole build block column-at-a-time, then link each row with
      // its precomputed hash.
      std::vector<uint64_t> hashes(nb);
      HashRowKeysBatch(*spec_.build_schema, block->RowAt(0),
                       block->row_size(), spec_.build_keys, nullptr, nb,
                       hashes.data());
      for (int32_t i = 0; i < nb; ++i) {
        if (!table_.Insert(block->RowAt(i), hashes[i])) {
          inserted = false;
          break;
        }
      }
    } else {
      for (int32_t i = 0; i < nb; ++i) {
        if (!table_.Insert(block->RowAt(i))) {
          inserted = false;
          break;
        }
      }
    }
    if (!inserted) {
      // The query's ledger refused the build row even after the shrink hook
      // ran. The shared build table cannot spill (every worker holds row
      // pointers into it), so this is the last rung: latch rejected and fail
      // the segment — the executor maps it to kResourceExhausted.
      if (spec_.budget != nullptr) spec_.budget->MarkRejected();
      if (!already_open) build_barrier_.Deregister();
      return NextResult::kError;
    }
    if (ctx->DetectedTerminateRequest()) {
      if (!already_open) build_barrier_.Deregister();
      return NextResult::kTerminated;
    }
  }
  opened = probe_child_->Open(ctx);
  if (opened != NextResult::kSuccess) {
    if (!already_open) build_barrier_.Deregister();
    return opened;
  }
  build_barrier_.Arrive();
  return NextResult::kSuccess;
}

NextResult HashJoinIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  const int build_size = spec_.build_schema->row_size();
  const int probe_size = spec_.probe_schema->row_size();
  const int out_size = output_schema_.row_size();
  if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
  BlockPtr input;
  NextResult r = probe_child_->Next(ctx, &input);
  if (r != NextResult::kSuccess) return r;
  const int32_t n = input->num_rows();
  // Join fan-out is unbounded, so accumulate matches first and size the
  // output block exactly (keeps Next stateless for concurrent workers).
  std::vector<char> rows;
  auto emit = [&](const char* probe_row, const char* build_row) {
    size_t off = rows.size();
    rows.resize(off + static_cast<size_t>(out_size));
    std::memcpy(rows.data() + off, build_row, build_size);
    std::memcpy(rows.data() + off + build_size, probe_row, probe_size);
  };
  if (batch_ && n > 0) {
    // Vectorized probe: one column-at-a-time hash pass over the block, then
    // chain walks with the hoisted comparator.
    std::vector<uint64_t> hashes(n);
    HashRowKeysBatch(*spec_.probe_schema, input->RowAt(0), input->row_size(),
                     spec_.probe_keys, nullptr, n, hashes.data());
    for (int32_t i = 0; i < n; ++i) {
      const char* probe_row = input->RowAt(i);
      table_.ForEachMatchHashed(
          hashes[i], probe_cmp_, probe_row,
          [&](const char* build_row) { emit(probe_row, build_row); });
    }
  } else {
    for (int32_t i = 0; i < n; ++i) {
      const char* probe_row = input->RowAt(i);
      table_.ForEachMatchHashed(
          HashRowKeys(*spec_.probe_schema, probe_row, spec_.probe_keys),
          probe_cmp_, probe_row,
          [&](const char* build_row) { emit(probe_row, build_row); });
    }
  }
  int32_t nrows = static_cast<int32_t>(rows.size() / out_size);
  auto output = MakeBlock(
      out_size,
      std::max<int32_t>(kDefaultBlockBytes, nrows * out_size));
  for (int32_t i = 0; i < nrows; ++i) output->AppendRow();
  if (nrows > 0) {
    std::memcpy(output->MutableRowAt(0), rows.data(), rows.size());
  }
  // A probe block with no matches still emits (empty): its sequence number
  // is the watermark the order-preserving merge is waiting for.
  output->set_sequence_number(input->sequence_number());
  output->set_visit_rate(input->visit_rate());
  *out = std::move(output);
  return NextResult::kSuccess;
}

void HashJoinIterator::Close() {
  build_child_->Close();
  probe_child_->Close();
}

}  // namespace claims
