#include "exec/ops/profiling_iterator.h"

#include "common/clock.h"
#include "obs/profile/profiler.h"

namespace claims {

ProfilingIterator::~ProfilingIterator() {
  // Normal teardown goes through Close(); the fallback covers error paths
  // where a segment unwinds without closing its tree.
  EmitSpan();
}

void ProfilingIterator::NoteInterval(int64_t start_ns, int64_t end_ns) {
  busy_ns_.fetch_add(end_ns - start_ns, std::memory_order_relaxed);
  int64_t cur = first_start_ns_.load(std::memory_order_relaxed);
  while (start_ns < cur && !first_start_ns_.compare_exchange_weak(
                               cur, start_ns, std::memory_order_relaxed)) {
  }
  cur = last_end_ns_.load(std::memory_order_relaxed);
  while (end_ns > cur && !last_end_ns_.compare_exchange_weak(
                             cur, end_ns, std::memory_order_relaxed)) {
  }
}

NextResult ProfilingIterator::Open(WorkerContext* ctx) {
  const int64_t t0 = SteadyClock::Default()->NowNanos();
  NextResult r = child_->Open(ctx);
  NoteInterval(t0, SteadyClock::Default()->NowNanos());
  return r;
}

NextResult ProfilingIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  const int64_t t0 = SteadyClock::Default()->NowNanos();
  NextResult r = child_->Next(ctx, out);
  NoteInterval(t0, SteadyClock::Default()->NowNanos());
  calls_.fetch_add(1, std::memory_order_relaxed);
  if (r == NextResult::kSuccess && *out != nullptr) {
    rows_.fetch_add((*out)->num_rows(), std::memory_order_relaxed);
  }
  return r;
}

void ProfilingIterator::Close() {
  child_->Close();
  EmitSpan();
}

void ProfilingIterator::EmitSpan() {
  if (emitted_.exchange(true, std::memory_order_acq_rel)) return;
  QueryProfiler* profiler = QueryProfiler::Global();
  if (!profiler->armed()) return;
  ProfSpan span;
  span.query_id = identity_.query_id;
  span.kind = SpanKind::kOperator;
  span.name = identity_.op_name;
  span.segment = identity_.segment;
  span.node = identity_.node;
  span.op_id = identity_.op_id;
  span.parent_op = identity_.parent_op;
  const int64_t first = first_start_ns_.load(std::memory_order_relaxed);
  span.start_ns = first == INT64_MAX ? 0 : first;
  span.end_ns = last_end_ns_.load(std::memory_order_relaxed);
  span.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  span.tuples = rows_.load(std::memory_order_relaxed);
  span.bytes = calls_.load(std::memory_order_relaxed);  // Next() call count
  profiler->EmitComplete(std::move(span));
}

}  // namespace claims
