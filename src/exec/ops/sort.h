#ifndef CLAIMS_EXEC_OPS_SORT_H_
#define CLAIMS_EXEC_OPS_SORT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/barrier.h"
#include "core/iterator.h"

namespace claims {

/// One ORDER BY key.
struct SortKey {
  int column;
  bool ascending = true;
};

/// Compares fixed-width rows on a key list (used by sort and by result
/// verification in tests).
class RowComparator {
 public:
  RowComparator(const Schema* schema, std::vector<SortKey> keys)
      : schema_(schema), keys_(std::move(keys)) {}

  /// <0, 0, >0 like memcmp.
  int Compare(const char* a, const char* b) const;
  bool operator()(const char* a, const char* b) const {
    return Compare(a, b) < 0;
  }

 private:
  const Schema* schema_;
  std::vector<SortKey> keys_;
};

/// Parallel sort — a pipeline breaker (appendix Alg. 8) in four phases:
///  1. all workers drain the child into a shared block buffer, then locally
///     sort one chunk (block) at a time into runs  — Barrier 1;
///  2. an elected worker samples the data and computes global separator keys
///     that split the key space into ranges                    — Barrier 2;
///  3. workers claim ranges and merge each range from all runs without any
///     further synchronization                                 — Barrier 3;
///  4. Next() hands out the range-ordered result blocks (sequence-numbered,
///     so an order-preserving elastic iterator keeps global order).
/// Terminate requests are honoured between chunks and between ranges: a
/// shrinking worker always completes its claimed unit, so no row is lost.
class SortIterator : public Iterator {
 public:
  /// `num_ranges` is the merge granularity (work units of phase 3).
  SortIterator(std::unique_ptr<Iterator> child, const Schema* schema,
               std::vector<SortKey> keys, int num_ranges = 16);

  NextResult Open(WorkerContext* ctx) override;
  NextResult Next(WorkerContext* ctx, BlockPtr* out) override;
  void Close() override;
  int SubtreeSize() const override { return 1 + child_->SubtreeSize(); }

  int64_t sorted_rows() const { return total_rows_.load(); }

 private:
  void DeregisterAll();

  std::unique_ptr<Iterator> child_;
  const Schema* schema_;
  RowComparator comparator_;
  int num_ranges_;

  DynamicBarrier barrier1_;
  DynamicBarrier barrier2_;
  DynamicBarrier barrier3_;
  FirstCallerGate separator_gate_;

  std::mutex mu_;
  std::vector<BlockPtr> buffered_;                 // phase 1 input
  std::vector<std::vector<const char*>> runs_;     // phase 1 output
  std::vector<std::vector<char>> separators_;      // phase 2 output
  std::vector<std::vector<BlockPtr>> range_blocks_;  // phase 3 output

  std::atomic<int> chunk_cursor_{0};
  std::atomic<int> range_cursor_{0};
  std::atomic<int64_t> total_rows_{0};
  std::atomic<int64_t> emit_cursor_{0};
  std::vector<BlockPtr> emit_list_;  // flattened, built once after barrier 3
  std::mutex emit_mu_;
  std::atomic<bool> emit_ready_{false};
};

}  // namespace claims

#endif  // CLAIMS_EXEC_OPS_SORT_H_
