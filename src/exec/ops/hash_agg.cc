#include "exec/ops/hash_agg.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "mem/scratch.h"

namespace claims {

DataType AggOutputType(AggFn fn, DataType arg_type) {
  if (fn == AggFn::kCount) return DataType::kInt64;
  if (fn == AggFn::kAvg) return DataType::kFloat64;
  if (arg_type == DataType::kFloat64) return DataType::kFloat64;
  if (arg_type == DataType::kDate && (fn == AggFn::kMin || fn == AggFn::kMax)) {
    return DataType::kDate;
  }
  return DataType::kInt64;
}

HashAggIterator::HashAggIterator(std::unique_ptr<Iterator> child, Spec spec)
    : child_(std::move(child)),
      spec_(std::move(spec)),
      group_schema_([this] {
        std::vector<ColumnDef> cols;
        for (size_t i = 0; i < spec_.group_exprs.size(); ++i) {
          const ExprPtr& e = spec_.group_exprs[i];
          std::string name = i < spec_.group_names.size()
                                 ? spec_.group_names[i]
                                 : e->ToString();
          DataType t = e->type();
          int32_t width = 0;
          int col = AsColumnRef(*e);
          if (t == DataType::kChar) {
            width = col >= 0 ? spec_.input_schema->column(col).char_width : 64;
          }
          cols.push_back(ColumnDef{std::move(name), t, width});
        }
        return Schema(std::move(cols));
      }()),
      output_schema_([this] {
        std::vector<ColumnDef> cols = group_schema_.columns();
        for (const Aggregate& a : spec_.aggregates) {
          DataType arg_type =
              a.arg != nullptr ? a.arg->type() : DataType::kInt64;
          cols.push_back(ColumnDef{a.name, AggOutputType(a.fn, arg_type), 0});
        }
        return Schema(std::move(cols));
      }()),
      global_(group_schema_, static_cast<int>(spec_.aggregates.size()),
              spec_.num_buckets,
              MemSource{spec_.pool, spec_.memory, spec_.budget}),
      context_pool_(ContextMode::kCore) {
  fns_.reserve(spec_.aggregates.size());
  for (const Aggregate& a : spec_.aggregates) fns_.push_back(a.fn);
  // FoldRow uses fixed stack arrays; the planner never emits this many.
  assert(spec_.aggregates.size() <= 16);
  all_group_cols_.resize(group_schema_.num_columns());
  for (int i = 0; i < group_schema_.num_columns(); ++i) all_group_cols_[i] = i;
  batch_ = CurrentKernelMode() == KernelMode::kBatch;
  if (batch_) {
    for (const ExprPtr& e : spec_.group_exprs) {
      group_computes_.push_back(BatchCompute::Compile(*spec_.input_schema, e));
    }
    for (const Aggregate& a : spec_.aggregates) {
      agg_computes_.push_back(
          a.arg != nullptr ? BatchCompute::Compile(*spec_.input_schema, a.arg)
                           : nullptr);
    }
  }
}

bool HashAggIterator::FoldRow(const char* row, AggHashTable* table,
                              char* group_scratch) {
  const Schema& in = *spec_.input_schema;
  for (size_t g = 0; g < spec_.group_exprs.size(); ++g) {
    group_schema_.SetValue(group_scratch, static_cast<int>(g),
                           spec_.group_exprs[g]->Eval(in, row));
  }
  double values[16];
  int64_t weights[16];
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    const Aggregate& agg = spec_.aggregates[a];
    values[a] = agg.arg != nullptr ? agg.arg->Eval(in, row).ToDouble() : 0.0;
    weights[a] = 1;
  }
  return table->Update(group_scratch, fns_, values, weights);
}

bool HashAggIterator::FoldBlock(const Block& block, AggHashTable* table,
                                bool exclusive, int32_t start,
                                int32_t* folded) {
  *folded = 0;
  const int32_t n = block.num_rows();
  if (start >= n) return true;
  const int32_t group_size = group_schema_.row_size();

  // (1) Materialize all group rows of the block into pooled scratch. A spill
  // retry re-materializes the whole block — wasteful, but spills are the
  // rare path and it keeps the scratch lifetime one call deep.
  Scratch<char> group_rows(
      spec_.pool, std::max<size_t>(1, static_cast<size_t>(group_size) * n));
  for (size_t g = 0; g < group_computes_.size(); ++g) {
    group_computes_[g]->Materialize(block, nullptr, n, group_schema_,
                                    static_cast<int>(g), group_rows.data());
  }

  // (2) Hash the materialized group rows column-at-a-time.
  Scratch<uint64_t> hashes(spec_.pool, static_cast<size_t>(n));
  HashRowKeysBatch(group_schema_, group_rows.data(), group_size,
                   all_group_cols_, nullptr, n, hashes.data());

  // (3) Evaluate every aggregate argument as a value vector.
  std::vector<std::unique_ptr<Scratch<double>>> arg_values(
      agg_computes_.size());
  for (size_t a = 0; a < agg_computes_.size(); ++a) {
    if (agg_computes_[a] == nullptr) continue;  // COUNT(*)
    arg_values[a] =
        std::make_unique<Scratch<double>>(spec_.pool, static_cast<size_t>(n));
    agg_computes_[a]->EvalDouble(block, nullptr, n, arg_values[a]->data());
  }

  // (4) Grouped update with the precomputed hashes, one batched call over
  // the resumable sub-range.
  const double* arg_cols[16];
  for (size_t a = 0; a < fns_.size(); ++a) {
    arg_cols[a] =
        agg_computes_[a] != nullptr ? arg_values[a]->data() + start : nullptr;
  }
  return table->UpdateBatch(
      group_rows.data() + static_cast<size_t>(start) * group_size, group_size,
      hashes.data() + start, n - start, fns_, arg_cols, exclusive, folded);
}

bool HashAggIterator::SpillPrivate(PrivateAggContext* priv) {
  std::unique_ptr<SpillRun> run = SpillRun::Create();
  if (run == nullptr) return false;
  if (!priv->table->SerializeTo(run.get()).ok()) return false;
  if (!run->Finish().ok()) return false;
  const int64_t run_bytes = run->bytes();
  {
    std::lock_guard<std::mutex> lock(spill_mu_);
    spill_runs_.push_back(std::move(run));
  }
  if (spec_.budget != nullptr) spec_.budget->AddSpilledBytes(run_bytes);
  // Retiring the old table refunds its arena's ledger charges — that refund
  // is the headroom the fresh table folds into.
  priv->table = std::make_unique<AggHashTable>(
      group_schema_, static_cast<int>(fns_.size()), spec_.num_buckets,
      MemSource{spec_.pool, spec_.memory, spec_.budget});
  return true;
}

bool HashAggIterator::ConsumeBlock(const Block& block, PrivateAggContext* priv,
                                   AggHashTable** sink, bool privately,
                                   char* group_scratch) {
  if (batch_) {
    int32_t start = 0;
    const int32_t n = block.num_rows();
    bool spilled_without_progress = false;
    while (start < n) {
      int32_t folded = 0;
      if (FoldBlock(block, *sink, privately, start, &folded)) return true;
      // Ledger refused a group mid-block: rows [start, start+folded) landed.
      if (!privately) return false;  // the shared table cannot spill
      // Progress guard: a fresh table that cannot hold even one row means
      // the budget is below a single arena chunk — spilling again would
      // loop forever, so give up and let the executor reject the query.
      if (folded == 0 && spilled_without_progress) return false;
      spilled_without_progress = folded == 0;
      start += folded;
      if (!SpillPrivate(priv)) return false;
      *sink = priv->table.get();
    }
    return true;
  }
  for (int32_t i = 0; i < block.num_rows(); ++i) {
    if (FoldRow(block.RowAt(i), *sink, group_scratch)) continue;
    if (!privately) return false;
    if (!SpillPrivate(priv)) return false;
    *sink = priv->table.get();
    // A fresh empty table refusing the very first row is terminal.
    if (!FoldRow(block.RowAt(i), *sink, group_scratch)) return false;
  }
  return true;
}

void HashAggIterator::ObserveVisitRate(const Block& block) {
  if (block.num_rows() == 0) return;
  std::lock_guard<std::mutex> lock(rate_mu_);
  rate_weighted_sum_ += block.visit_rate() * block.num_rows();
  rate_rows_ += block.num_rows();
}

bool HashAggIterator::MergeInto(const AggHashTable& src) {
  bool ok = true;
  src.ForEach([&](const char* group_row, const AggHashTable::AggState* states) {
    if (!ok) return;  // ForEach cannot early-stop; skip the remainder
    double values[16];
    int64_t weights[16];
    for (size_t a = 0; a < fns_.size(); ++a) {
      values[a] = states[a].sum;
      weights[a] = states[a].count;
    }
    if (!global_.Update(group_row, fns_, values, weights)) ok = false;
  });
  return ok;
}

NextResult HashAggIterator::Open(WorkerContext* ctx) {
  bool already_open = build_barrier_.Register();
  NextResult opened = child_->Open(ctx);
  if (opened != NextResult::kSuccess) {
    if (!already_open) build_barrier_.Deregister();
    return opened;
  }

  const bool privately =
      spec_.mode == Mode::kIndependent || spec_.mode == Mode::kHybrid;
  std::unique_ptr<PrivateAggContext> priv;
  if (privately) {
    // Try to reuse a parked private table allocated by this core (§3.2(1)).
    auto reused = context_pool_.Acquire(ctx->core_id, ctx->socket_id);
    if (reused != nullptr) {
      priv.reset(static_cast<PrivateAggContext*>(reused.release()));
    } else {
      priv = std::make_unique<PrivateAggContext>();
      priv->table = std::make_unique<AggHashTable>(
          group_schema_, static_cast<int>(fns_.size()), spec_.num_buckets,
          MemSource{spec_.pool, spec_.memory, spec_.budget});
    }
  }
  AggHashTable* sink = privately ? priv->table.get() : &global_;

  // Degradation exhausted (shrink already ran via the ledger's hook, the
  // spill rung could not absorb the fold): latch rejected and fail the
  // segment. The private table is dropped, not parked — its destructor
  // refunds the ledger, and the query is past saving anyway.
  auto fail_build = [&] {
    if (spec_.budget != nullptr) spec_.budget->MarkRejected();
    if (!already_open) build_barrier_.Deregister();
    return NextResult::kError;
  };

  std::vector<char> group_scratch(std::max(1, group_schema_.row_size()));
  while (true) {
    BlockPtr block;
    NextResult r = child_->Next(ctx, &block);
    if (r == NextResult::kEndOfFile) break;
    if (r != NextResult::kSuccess ||
        ctx->DetectedTerminateRequest()) {
      if (r == NextResult::kSuccess) {
        // Finish the in-flight block before unwinding — no tuple is lost.
        ObserveVisitRate(*block);
        if (!ConsumeBlock(*block, priv.get(), &sink, privately,
                          group_scratch.data())) {
          return fail_build();
        }
      }
      if (privately) {
        // Park the partial table for reuse; flushed by the last finisher.
        context_pool_.Release(std::move(priv), ctx->core_id, ctx->socket_id);
      }
      if (!already_open) build_barrier_.Deregister();
      // kError re-raises (broken stream); everything else unwinds as a shrink.
      return r == NextResult::kError ? NextResult::kError
                                     : NextResult::kTerminated;
    }
    ObserveVisitRate(*block);
    if (!ConsumeBlock(*block, priv.get(), &sink, privately,
                      group_scratch.data())) {
      return fail_build();
    }
    if (spec_.mode == Mode::kHybrid &&
        sink->size() > static_cast<int64_t>(spec_.hybrid_max_groups)) {
      if (!MergeInto(*sink)) return fail_build();
      priv->table = std::make_unique<AggHashTable>(
          group_schema_, static_cast<int>(fns_.size()), spec_.num_buckets,
          MemSource{spec_.pool, spec_.memory, spec_.budget});
      sink = priv->table.get();
    }
  }

  if (privately) {
    if (!MergeInto(*priv->table)) return fail_build();
  }
  build_barrier_.Arrive();
  // Parked partial tables (terminated workers') are folded in by the
  // snapshot builder, not here: a post-Arrive flush would race workers that
  // already passed the barrier and are emitting from global_.
  return NextResult::kSuccess;
}

void HashAggIterator::SnapshotGroups() {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  if (snapshot_ready_.load(std::memory_order_relaxed)) return;
  if (restore_failed_.load(std::memory_order_relaxed)) return;
  // Fold every parked partial table first. All parks happened before the
  // build barrier opened (a parking worker releases its table before it
  // deregisters), and no emitter reads global_ before snapshot_ready_, so
  // doing the flush here — under snapshot_mu_, before the snapshot — is the
  // one place it cannot race the emit path.
  for (auto& parked : context_pool_.TakeAll()) {
    auto* p = static_cast<PrivateAggContext*>(parked.get());
    if (!MergeInto(*p->table)) {
      if (spec_.budget != nullptr) spec_.budget->MarkRejected();
      restore_failed_.store(true, std::memory_order_release);
      return;
    }
  }
  // Transparent re-read of the cold tier: merge every spilled run back into
  // the global table before anything is emitted.
  std::vector<std::unique_ptr<SpillRun>> runs;
  {
    std::lock_guard<std::mutex> spill_lock(spill_mu_);
    runs.swap(spill_runs_);
  }
  for (const auto& run : runs) {
    std::vector<char> data;
    Status s = run->ReadAll(&data);
    if (s.ok()) {
      s = AggHashTable::MergeSerialized(data.data(), data.size(), fns_,
                                        &global_);
    }
    if (!s.ok()) {
      if (s.code() == StatusCode::kResourceExhausted &&
          spec_.budget != nullptr) {
        spec_.budget->MarkRejected();
      }
      restore_failed_.store(true, std::memory_order_release);
      return;
    }
  }
  groups_.reserve(static_cast<size_t>(global_.size()));
  global_.ForEach(
      [&](const char* row, const AggHashTable::AggState* states) {
        groups_.emplace_back(row, states);
      });
  snapshot_ready_.store(true, std::memory_order_release);
}

NextResult HashAggIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
  if (!snapshot_ready_.load(std::memory_order_acquire)) SnapshotGroups();
  // Restore failure (parked-table or spilled-run merge refused by the
  // ledger): a partial result would be silently wrong — fail the segment.
  if (restore_failed_.load(std::memory_order_acquire)) return NextResult::kError;

  const int out_size = output_schema_.row_size();
  const int rows_per_block = std::max(1, kDefaultBlockBytes / out_size);
  size_t start = emit_cursor_.fetch_add(static_cast<size_t>(rows_per_block),
                                        std::memory_order_relaxed);
  if (start >= groups_.size()) return NextResult::kEndOfFile;
  size_t end = std::min(groups_.size(), start + rows_per_block);

  auto block = MakeBlock(out_size);
  const int ngroup = group_schema_.num_columns();
  for (size_t i = start; i < end; ++i) {
    char* slot = block->AppendRow();
    std::memcpy(slot, groups_[i].first, group_schema_.row_size());
    for (size_t a = 0; a < fns_.size(); ++a) {
      const AggHashTable::AggState& st = *(groups_[i].second + a);
      int col = ngroup + static_cast<int>(a);
      Value v;
      switch (fns_[a]) {
        case AggFn::kCount:
          v = Value::Int64(st.count);
          break;
        case AggFn::kAvg:
          v = Value::Float64(st.count == 0 ? 0 : st.sum / st.count);
          break;
        default:
          v = output_schema_.column(col).type == DataType::kFloat64
                  ? Value::Float64(st.sum)
                  : Value::Int64(static_cast<int64_t>(st.sum));
          break;
      }
      output_schema_.SetValue(slot, col, v);
    }
  }
  block->set_sequence_number(start / rows_per_block);
  {
    // Propagate the consumed input's average visit rate onto emitted blocks;
    // leaving the default 1.0 here fed stale rates into the downstream
    // scalability-vector estimation (§4.3).
    std::lock_guard<std::mutex> lock(rate_mu_);
    block->set_visit_rate(rate_rows_ > 0 ? rate_weighted_sum_ / rate_rows_
                                         : 1.0);
  }
  *out = std::move(block);
  return NextResult::kSuccess;
}

void HashAggIterator::Close() { child_->Close(); }

}  // namespace claims
