#include "exec/ops/filter.h"

#include <algorithm>

namespace claims {

FilterIterator::FilterIterator(std::unique_ptr<Iterator> child,
                               const Schema* schema, ExprPtr predicate)
    : child_(std::move(child)), schema_(schema),
      predicate_(std::move(predicate)) {
  if (CurrentKernelMode() == KernelMode::kBatch) {
    batch_pred_ = BatchPredicate::Compile(*schema_, predicate_);
  }
}

NextResult FilterIterator::Open(WorkerContext* ctx) {
  bool already_open = open_barrier_.Register();
  NextResult r = child_->Open(ctx);
  if (r != NextResult::kSuccess) {
    // kTerminated (shrink) and kError (broken stream) both unwind here;
    // deregistering keeps the barrier count honest for the surviving workers.
    if (!already_open) open_barrier_.Deregister();
    return r;
  }
  // The predicate reference is set at construction; first arrival is a no-op
  // but the election + barrier mirror the appendix structure.
  init_gate_.TryClaim();
  open_barrier_.Arrive();
  return NextResult::kSuccess;
}

NextResult FilterIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  BlockPtr input;
  NextResult r = child_->Next(ctx, &input);
  if (r != NextResult::kSuccess) return r;
  const int32_t n = input->num_rows();
  // Worst-case sizing like project: an oversized input block (larger than the
  // default 64 KB) must never truncate survivors.
  auto output = MakeBlock(
      schema_->row_size(),
      std::max<int32_t>(kDefaultBlockBytes, n * schema_->row_size()));
  if (batch_pred_ != nullptr) {
    std::vector<int32_t> sel(n);
    int32_t k = batch_pred_->FilterBlock(*input, nullptr, n, sel.data());
    output->AppendGather(*input, sel.data(), k);
  } else {
    for (int32_t i = 0; i < n; ++i) {
      const char* row = input->RowAt(i);
      if (predicate_->EvalBool(*schema_, row)) {
        output->AppendRowCopy(row);
      }
    }
  }
  // A fully filtered block is emitted empty, sequence number intact, as the
  // downstream watermark — never silently dropped.
  output->set_sequence_number(input->sequence_number());
  output->set_visit_rate(input->visit_rate());
  *out = std::move(output);
  return NextResult::kSuccess;
}

void FilterIterator::Close() { child_->Close(); }

ProjectIterator::ProjectIterator(std::unique_ptr<Iterator> child,
                                 const Schema* input_schema,
                                 Schema output_schema,
                                 std::vector<ExprPtr> exprs)
    : child_(std::move(child)),
      input_schema_(input_schema),
      output_schema_(std::move(output_schema)),
      exprs_(std::move(exprs)) {
  all_plain_ = true;
  for (const ExprPtr& e : exprs_) {
    int col = AsColumnRef(*e);
    if (col < 0) {
      all_plain_ = false;
      break;
    }
    plain_cols_.push_back(col);
  }
}

NextResult ProjectIterator::Open(WorkerContext* ctx) {
  return child_->Open(ctx);
}

NextResult ProjectIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  BlockPtr input;
  NextResult r = child_->Next(ctx, &input);
  if (r != NextResult::kSuccess) return r;
  // Size the output for the worst case (wider output rows than input rows),
  // so a whole input block always projects into one output block and Next
  // stays stateless across concurrent workers.
  int32_t capacity = std::max<int32_t>(
      kDefaultBlockBytes, input->num_rows() * output_schema_.row_size());
  auto output = MakeBlock(output_schema_.row_size(), capacity);
  for (int i = 0; i < input->num_rows(); ++i) {
    const char* row = input->RowAt(i);
    char* slot = output->AppendRow();
    if (all_plain_) {
      for (size_t c = 0; c < plain_cols_.size(); ++c) {
        output_schema_.SetValue(
            slot, static_cast<int>(c),
            input_schema_->GetValue(row, plain_cols_[c]));
      }
    } else {
      for (size_t c = 0; c < exprs_.size(); ++c) {
        output_schema_.SetValue(slot, static_cast<int>(c),
                                exprs_[c]->Eval(*input_schema_, row));
      }
    }
  }
  output->set_sequence_number(input->sequence_number());
  output->set_visit_rate(input->visit_rate());
  *out = std::move(output);
  return NextResult::kSuccess;
}

void ProjectIterator::Close() { child_->Close(); }

}  // namespace claims
