#include "exec/ops/sort.h"

#include <algorithm>
#include <cstring>

namespace claims {

int RowComparator::Compare(const char* a, const char* b) const {
  for (const SortKey& k : keys_) {
    int c = 0;
    switch (schema_->column(k.column).type) {
      case DataType::kInt32:
      case DataType::kDate: {
        int32_t x = schema_->GetInt32(a, k.column);
        int32_t y = schema_->GetInt32(b, k.column);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
      case DataType::kInt64: {
        int64_t x = schema_->GetInt64(a, k.column);
        int64_t y = schema_->GetInt64(b, k.column);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
      case DataType::kFloat64: {
        double x = schema_->GetFloat64(a, k.column);
        double y = schema_->GetFloat64(b, k.column);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
      case DataType::kChar: {
        std::string_view x = schema_->GetString(a, k.column);
        std::string_view y = schema_->GetString(b, k.column);
        c = x < y ? -1 : (x == y ? 0 : 1);
        break;
      }
    }
    if (c != 0) return k.ascending ? c : -c;
  }
  return 0;
}

SortIterator::SortIterator(std::unique_ptr<Iterator> child,
                           const Schema* schema, std::vector<SortKey> keys,
                           int num_ranges)
    : child_(std::move(child)),
      schema_(schema),
      comparator_(schema, std::move(keys)),
      num_ranges_(std::max(1, num_ranges)) {
  range_blocks_.resize(static_cast<size_t>(num_ranges_));
}

void SortIterator::DeregisterAll() {
  barrier1_.Deregister();
  barrier2_.Deregister();
  barrier3_.Deregister();
}

NextResult SortIterator::Open(WorkerContext* ctx) {
  // registerToAllBarriers (appendix A.2.2).
  bool b1_open = barrier1_.Register();
  barrier2_.Register();
  barrier3_.Register();
  // kTerminated (shrink) and kError (broken stream) both unwind through the
  // same deregistration; the original code is re-raised so errors propagate.
  auto bail = [&](NextResult r) -> NextResult {
    DeregisterAll();
    return r;
  };
  NextResult opened = child_->Open(ctx);
  if (opened != NextResult::kSuccess) return bail(opened);

  // --- Phase 1a: drain the child into the shared buffer ---------------------
  while (true) {
    BlockPtr block;
    NextResult r = child_->Next(ctx, &block);
    if (r == NextResult::kEndOfFile) break;
    if (r != NextResult::kSuccess) return bail(r);
    {
      std::lock_guard<std::mutex> lock(mu_);
      total_rows_.fetch_add(block->num_rows(), std::memory_order_relaxed);
      buffered_.push_back(std::move(block));
    }
    if (ctx->DetectedTerminateRequest()) return bail(NextResult::kTerminated);
  }

  // --- Phase 1b: chunk-sort (one block per chunk) ----------------------------
  while (true) {
    if (ctx->DetectedTerminateRequest()) return bail(NextResult::kTerminated);
    BlockPtr chunk_block;
    {
      // The buffer only grows while some worker is still draining. Claim the
      // chunk AND copy its BlockPtr under the lock — a concurrent push_back
      // may reallocate buffered_, so indexing it unlocked is a use-after-free
      // (the block itself is pinned by the shared_ptr copy).
      std::lock_guard<std::mutex> lock(mu_);
      int chunk = chunk_cursor_.load(std::memory_order_relaxed);
      if (chunk >= static_cast<int>(buffered_.size())) break;
      chunk_cursor_.store(chunk + 1, std::memory_order_relaxed);
      chunk_block = buffered_[static_cast<size_t>(chunk)];
    }
    const Block& block = *chunk_block;
    std::vector<const char*> run;
    run.reserve(static_cast<size_t>(block.num_rows()));
    for (int i = 0; i < block.num_rows(); ++i) run.push_back(block.RowAt(i));
    std::sort(run.begin(), run.end(), comparator_);
    std::lock_guard<std::mutex> lock(mu_);
    runs_.push_back(std::move(run));
  }
  (void)b1_open;
  barrier1_.Arrive();

  // --- Phase 2: separator computation (one worker) ---------------------------
  if (separator_gate_.TryClaim()) {
    std::lock_guard<std::mutex> lock(mu_);
    // Sample up to 64 rows per run, sort the sample, take quantiles.
    std::vector<const char*> sample;
    for (const auto& run : runs_) {
      size_t step = std::max<size_t>(1, run.size() / 64);
      for (size_t i = 0; i < run.size(); i += step) sample.push_back(run[i]);
    }
    std::sort(sample.begin(), sample.end(), comparator_);
    for (int r = 1; r < num_ranges_; ++r) {
      if (sample.empty()) break;
      size_t idx = sample.size() * static_cast<size_t>(r) /
                   static_cast<size_t>(num_ranges_);
      if (idx >= sample.size()) idx = sample.size() - 1;
      std::vector<char> sep(static_cast<size_t>(schema_->row_size()));
      std::memcpy(sep.data(), sample[idx], sep.size());
      separators_.push_back(std::move(sep));
    }
  }
  barrier2_.Arrive();

  // --- Phase 3: range merges (claimed work units) -----------------------------
  const int nsep = static_cast<int>(separators_.size());
  while (true) {
    if (ctx->DetectedTerminateRequest()) return bail(NextResult::kTerminated);
    int range = range_cursor_.fetch_add(1, std::memory_order_relaxed);
    if (range > nsep) break;  // ranges = nsep + 1
    const char* lo = range > 0 ? separators_[range - 1].data() : nullptr;
    const char* hi = range < nsep ? separators_[range].data() : nullptr;
    std::vector<const char*> rows;
    for (const auto& run : runs_) {
      auto begin = lo == nullptr
                       ? run.begin()
                       : std::lower_bound(run.begin(), run.end(), lo,
                                          comparator_);
      auto end = hi == nullptr
                     ? run.end()
                     : std::lower_bound(run.begin(), run.end(), hi,
                                        comparator_);
      rows.insert(rows.end(), begin, end);
    }
    std::sort(rows.begin(), rows.end(), comparator_);
    std::vector<BlockPtr> blocks;
    BlockPtr current;
    for (const char* row : rows) {
      if (current == nullptr || current->full()) {
        if (current != nullptr) blocks.push_back(std::move(current));
        current = MakeBlock(schema_->row_size());
      }
      current->AppendRowCopy(row);
    }
    if (current != nullptr) blocks.push_back(std::move(current));
    range_blocks_[static_cast<size_t>(range)] = std::move(blocks);
  }
  barrier3_.Arrive();
  return NextResult::kSuccess;
}

NextResult SortIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
  if (!emit_ready_) {
    std::lock_guard<std::mutex> lock(emit_mu_);
    if (!emit_ready_) {
      uint64_t seq = 0;
      for (auto& range : range_blocks_) {
        for (BlockPtr& b : range) {
          b->set_sequence_number(seq++);
          emit_list_.push_back(std::move(b));
        }
        range.clear();
      }
      emit_ready_ = true;
    }
  }
  int64_t i = emit_cursor_.fetch_add(1, std::memory_order_relaxed);
  if (i >= static_cast<int64_t>(emit_list_.size())) {
    return NextResult::kEndOfFile;
  }
  *out = emit_list_[static_cast<size_t>(i)];
  return NextResult::kSuccess;
}

void SortIterator::Close() {
  child_->Close();
  std::lock_guard<std::mutex> lock(mu_);
  buffered_.clear();
  runs_.clear();
  emit_list_.clear();
}

}  // namespace claims
