#include "exec/ops/scan.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace claims {

ScanIterator::ScanIterator(const TablePartition* partition,
                           const Schema* schema, Options options)
    : partition_(partition), schema_(schema), options_(std::move(options)) {
  if (options_.num_sockets < 1) options_.num_sockets = 1;
  for (int s = 0; s < options_.num_sockets; ++s) {
    cursors_.push_back(std::make_unique<std::atomic<int>>(0));
  }
  if (options_.predicate != nullptr &&
      CurrentKernelMode() == KernelMode::kBatch) {
    batch_pred_ = BatchPredicate::Compile(*schema_, options_.predicate);
  }
}

NextResult ScanIterator::Open(WorkerContext* ctx) {
  bool already_open = open_barrier_.Register();
  if (ctx->DetectedTerminateRequest()) {
    if (!already_open) open_barrier_.Deregister();
    return NextResult::kTerminated;
  }
  // The read cursors are members initialized at construction; the first
  // worker has nothing heavy to do, matching the appendix's instant open.
  init_gate_.TryClaim();
  open_barrier_.Arrive();
  return NextResult::kSuccess;
}

int ScanIterator::ClaimFrom(int socket) {
  const int stride = options_.num_sockets;
  const int num_blocks = partition_->num_blocks();
  while (true) {
    int pos = cursors_[socket]->load(std::memory_order_relaxed);
    int index = socket + pos * stride;
    if (index >= num_blocks) return -1;
    if (cursors_[socket]->compare_exchange_weak(pos, pos + 1,
                                                std::memory_order_relaxed)) {
      return index;
    }
  }
}

NextResult ScanIterator::Next(WorkerContext* ctx, BlockPtr* out) {
  if (ctx->DetectedTerminateRequest()) return NextResult::kTerminated;
  // Prefer the worker's own socket slice, then steal round-robin.
  int home = options_.num_sockets > 0 ? ctx->socket_id % options_.num_sockets
                                      : 0;
  int index = -1;
  for (int i = 0; i < options_.num_sockets && index < 0; ++i) {
    index = ClaimFrom((home + i) % options_.num_sockets);
  }
  if (index < 0) return NextResult::kEndOfFile;

  const Block& src = *partition_->block(index);
  // Copy out of immutable storage so downstream stages own their blocks
  // (metadata tails are per-flow mutable state). A pushed-down predicate
  // filters during this copy — survivors gather straight out of storage, and
  // a fully filtered block goes out empty as the sequence watermark.
  const int32_t n = src.num_rows();
  auto block = MakeBlock(
      schema_->row_size(),
      std::max<int32_t>(kDefaultBlockBytes, n * schema_->row_size()));
  if (batch_pred_ != nullptr) {
    std::vector<int32_t> sel(n);
    int32_t k = batch_pred_->FilterBlock(src, nullptr, n, sel.data());
    block->AppendGather(src, sel.data(), k);
  } else if (options_.predicate != nullptr) {
    for (int32_t i = 0; i < n; ++i) {
      const char* row = src.RowAt(i);
      if (options_.predicate->EvalBool(*schema_, row)) {
        block->AppendRowCopy(row);
      }
    }
  } else {
    for (int32_t i = 0; i < n; ++i) block->AppendRow();
    std::memcpy(block->MutableRowAt(0), src.RowAt(0),
                static_cast<size_t>(n) * src.row_size());
  }
  block->set_sequence_number(static_cast<uint64_t>(index));
  block->set_visit_rate(1.0);  // input group: every source tuple visits once
  if (ctx->processing_started != nullptr) {
    ctx->processing_started->store(true, std::memory_order_release);
  }
  if (ctx->stats != nullptr) {
    ctx->stats->input_tuples.fetch_add(src.num_rows(),
                                       std::memory_order_relaxed);
  }
  *out = std::move(block);
  return NextResult::kSuccess;
}

void ScanIterator::Close() {}

}  // namespace claims
