#include "exec/hash_table.h"

#include <cstring>

namespace claims {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// --- Arena ---------------------------------------------------------------------

Arena::~Arena() {
  for (const auto& c : chunks_) {
    if (memory_ != nullptr) memory_->Release(static_cast<int64_t>(c->size));
    delete[] c->data;
  }
}

char* Arena::Allocate(size_t bytes) {
  bytes = (bytes + 7) & ~size_t{7};
  while (true) {
    Chunk* chunk = current_.load(std::memory_order_acquire);
    if (chunk != nullptr) {
      // fetch_add may overshoot the limit; overshooters fall through to the
      // refill path and retry against the next region. The wasted tail is at
      // most (threads - 1) * bytes per refill — bounded and harmless.
      char* cur = chunk->cursor.fetch_add(static_cast<int64_t>(bytes),
                                          std::memory_order_relaxed);
      if (cur + bytes <= chunk->limit) {
        allocated_.fetch_add(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed);
        return cur;
      }
    }
    // Refill. Oversized requests get a dedicated chunk.
    std::lock_guard<std::mutex> lock(refill_mu_);
    if (current_.load(std::memory_order_acquire) != chunk) {
      continue;  // raced a refill — retry on the new region
    }
    size_t size = std::max(bytes, chunk_bytes_);
    char* data = new char[size];
    auto fresh = std::make_unique<Chunk>();
    fresh->data = data;
    fresh->size = size;
    fresh->limit = data + size;
    fresh->cursor.store(data, std::memory_order_relaxed);
    if (memory_ != nullptr) memory_->Allocate(static_cast<int64_t>(size));
    if (size > chunk_bytes_) {
      // Dedicated chunk: hand it out directly, leave the bump region alone.
      fresh->cursor.store(data + size, std::memory_order_relaxed);
      chunks_.push_back(std::move(fresh));
      allocated_.fetch_add(static_cast<int64_t>(bytes),
                           std::memory_order_relaxed);
      return data;
    }
    Chunk* published = fresh.get();
    chunks_.push_back(std::move(fresh));
    current_.store(published, std::memory_order_release);
  }
}

// --- KeyComparator -------------------------------------------------------------

KeyComparator::KeyComparator(const Schema* left_schema,
                             std::vector<int> left_cols,
                             const Schema* right_schema,
                             std::vector<int> right_cols)
    : left_schema_(left_schema),
      right_schema_(right_schema),
      left_cols_(std::move(left_cols)),
      right_cols_(std::move(right_cols)) {}

bool KeyComparator::Equal(const char* left_row, const char* right_row) const {
  for (size_t i = 0; i < left_cols_.size(); ++i) {
    int lc = left_cols_[i];
    int rc = right_cols_[i];
    switch (left_schema_->column(lc).type) {
      case DataType::kInt32:
      case DataType::kDate:
        if (left_schema_->GetInt32(left_row, lc) !=
            right_schema_->GetInt32(right_row, rc))
          return false;
        break;
      case DataType::kInt64:
        if (left_schema_->GetInt64(left_row, lc) !=
            right_schema_->GetInt64(right_row, rc))
          return false;
        break;
      case DataType::kFloat64:
        if (left_schema_->GetFloat64(left_row, lc) !=
            right_schema_->GetFloat64(right_row, rc))
          return false;
        break;
      case DataType::kChar:
        if (left_schema_->GetString(left_row, lc) !=
            right_schema_->GetString(right_row, rc))
          return false;
        break;
    }
  }
  return true;
}

// --- JoinHashTable -------------------------------------------------------------

JoinHashTable::JoinHashTable(const Schema* build_schema,
                             std::vector<int> build_keys, size_t num_buckets,
                             MemoryTracker* memory)
    : build_schema_(build_schema),
      build_keys_(std::move(build_keys)),
      buckets_(RoundUpPow2(num_buckets == 0 ? 1 : num_buckets)),
      bucket_mask_(buckets_.size() - 1),
      arena_(1 << 18, memory) {}

void JoinHashTable::Insert(const char* row) {
  Insert(row, HashRowKeys(*build_schema_, row, build_keys_));
}

void JoinHashTable::Insert(const char* row, uint64_t h) {
  auto* entry = reinterpret_cast<Entry*>(
      arena_.Allocate(sizeof(Entry) + build_schema_->row_size()));
  entry->hash = h;
  std::memcpy(entry->row(), row, build_schema_->row_size());
  std::atomic<Entry*>& head = buckets_[h & bucket_mask_];
  Entry* expected = head.load(std::memory_order_relaxed);
  do {
    entry->next = expected;
  } while (!head.compare_exchange_weak(expected, entry,
                                       std::memory_order_release,
                                       std::memory_order_relaxed));
  size_.fetch_add(1, std::memory_order_relaxed);
}

// --- AggHashTable --------------------------------------------------------------

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

AggHashTable::AggHashTable(Schema group_schema, int num_aggs,
                           size_t num_buckets, MemoryTracker* memory)
    : group_schema_(std::move(group_schema)),
      all_group_cols_([this] {
        std::vector<int> cols(
            static_cast<size_t>(group_schema_.num_columns()));
        for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
        return cols;
      }()),
      group_cmp_(&group_schema_, all_group_cols_, &group_schema_,
                 all_group_cols_),
      group_row_size_(group_schema_.row_size()),
      num_aggs_(num_aggs),
      buckets_(RoundUpPow2(num_buckets == 0 ? 1 : num_buckets)),
      bucket_mask_(buckets_.size() - 1),
      arena_(1 << 18, memory) {}

AggHashTable::Entry* AggHashTable::FindOrCreate(const char* group_row,
                                                uint64_t hash) {
  Bucket& bucket = buckets_[hash & bucket_mask_];
  // Lock-free lookup first.
  for (Entry* e = bucket.head.load(std::memory_order_acquire); e != nullptr;
       e = e->next) {
    if (e->hash == hash &&
        group_cmp_.Equal(e->row(group_row_size_), group_row)) {
      return e;
    }
  }
  // Slow path: exclusive insert for this bucket, re-check, then link.
  while (bucket.insert_lock.test_and_set(std::memory_order_acquire)) {
  }
  Entry* head = bucket.head.load(std::memory_order_relaxed);
  for (Entry* e = head; e != nullptr; e = e->next) {
    if (e->hash == hash &&
        group_cmp_.Equal(e->row(group_row_size_), group_row)) {
      bucket.insert_lock.clear(std::memory_order_release);
      return e;
    }
  }
  auto* entry = reinterpret_cast<Entry*>(
      arena_.Allocate(sizeof(Entry) + Entry::AlignUp(group_row_size_) +
                      sizeof(AggState) * static_cast<size_t>(num_aggs_)));
  new (entry) Entry();
  entry->hash = hash;
  std::memcpy(entry->row(group_row_size_), group_row, group_row_size_);
  AggState* states = entry->states(group_row_size_, num_aggs_);
  for (int i = 0; i < num_aggs_; ++i) new (&states[i]) AggState();
  entry->next = head;
  bucket.head.store(entry, std::memory_order_release);
  bucket.insert_lock.clear(std::memory_order_release);
  size_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

void AggHashTable::Update(const char* group_row, const std::vector<AggFn>& fns,
                          const double* values, const int64_t* count_weights) {
  Update(group_row, HashRowKeys(group_schema_, group_row, all_group_cols_),
         fns, values, count_weights);
}

void AggHashTable::Update(const char* group_row, uint64_t hash,
                          const std::vector<AggFn>& fns, const double* values,
                          const int64_t* count_weights, bool exclusive) {
  Entry* entry = FindOrCreate(group_row, hash);
  AggState* states = entry->states(group_row_size_, num_aggs_);
  if (exclusive) {
    // Worker-private table: the caller is the only thread folding into it.
    for (int i = 0; i < num_aggs_; ++i) {
      FoldAgg(fns[i], values[i], count_weights[i], &states[i]);
    }
    return;
  }
  // Per-entry spinlock: the contention point of shared aggregation.
  while (entry->lock.test_and_set(std::memory_order_acquire)) {
  }
  for (int i = 0; i < num_aggs_; ++i) {
    FoldAgg(fns[i], values[i], count_weights[i], &states[i]);
  }
  entry->lock.clear(std::memory_order_release);
}

void AggHashTable::UpdateBatch(const char* group_rows, int32_t stride,
                               const uint64_t* hashes, int32_t n,
                               const std::vector<AggFn>& fns,
                               const double* const* arg_cols, bool exclusive) {
  const int num_aggs = num_aggs_;
  for (int32_t i = 0; i < n; ++i) {
    const char* row = group_rows + static_cast<size_t>(i) * stride;
    Entry* entry = FindOrCreate(row, hashes[i]);
    AggState* states = entry->states(group_row_size_, num_aggs);
    if (!exclusive) {
      while (entry->lock.test_and_set(std::memory_order_acquire)) {
      }
    }
    for (int a = 0; a < num_aggs; ++a) {
      FoldAgg(fns[a], arg_cols[a] != nullptr ? arg_cols[a][i] : 0.0, 1,
              &states[a]);
    }
    if (!exclusive) entry->lock.clear(std::memory_order_release);
  }
}

}  // namespace claims
