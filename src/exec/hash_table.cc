#include "exec/hash_table.h"

#include <cstring>

#include "mem/spill.h"

namespace claims {

namespace {

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// --- Arena ---------------------------------------------------------------------

Arena::~Arena() { ReleaseChunksLocked(); }

void Arena::Reset() {
  std::lock_guard<std::mutex> lock(refill_mu_);
  current_.store(nullptr, std::memory_order_release);
  ReleaseChunksLocked();
  chunks_.clear();
  allocated_.store(0, std::memory_order_relaxed);
}

void Arena::ReleaseChunksLocked() {
  // Pool-backed chunks recycle into the BlockPool (arena.recycled_bytes)
  // instead of churning through the global allocator once per query.
  const bool recycled = source_.pool != nullptr;
  for (const auto& c : chunks_) {
    source_.ReleaseChunk(c->handle, recycled);
  }
}

char* Arena::Allocate(size_t bytes) {
  bytes = (bytes + 7) & ~size_t{7};
  while (true) {
    Chunk* chunk = current_.load(std::memory_order_acquire);
    if (chunk != nullptr) {
      // fetch_add may overshoot the limit; overshooters fall through to the
      // refill path and retry against the next region. The wasted tail is at
      // most (threads - 1) * bytes per refill — bounded and harmless.
      char* cur = chunk->cursor.fetch_add(static_cast<int64_t>(bytes),
                                          std::memory_order_relaxed);
      if (cur + bytes <= chunk->limit) {
        allocated_.fetch_add(static_cast<int64_t>(bytes),
                             std::memory_order_relaxed);
        return cur;
      }
    }
    // Refill. Oversized requests get a dedicated chunk.
    std::lock_guard<std::mutex> lock(refill_mu_);
    if (current_.load(std::memory_order_acquire) != chunk) {
      continue;  // raced a refill — retry on the new region
    }
    size_t size = std::max(bytes, chunk_bytes_);
    PoolAlloc handle = source_.AllocateChunk(size);
    if (!handle) {
      // Memory source refused (budget breach / pool pressure). The caller
      // turns this into a fallible insert; the arena stays usable — a later
      // attempt after shrink/spill may succeed.
      return nullptr;
    }
    auto fresh = std::make_unique<Chunk>();
    fresh->handle = handle;
    fresh->limit = handle.data + handle.bytes;
    fresh->cursor.store(handle.data, std::memory_order_relaxed);
    if (bytes > chunk_bytes_) {
      // Dedicated chunk: hand it out directly, leave the bump region alone.
      fresh->cursor.store(fresh->limit, std::memory_order_relaxed);
      char* data = handle.data;
      chunks_.push_back(std::move(fresh));
      allocated_.fetch_add(static_cast<int64_t>(bytes),
                           std::memory_order_relaxed);
      return data;
    }
    Chunk* published = fresh.get();
    chunks_.push_back(std::move(fresh));
    current_.store(published, std::memory_order_release);
  }
}

// --- KeyComparator -------------------------------------------------------------

KeyComparator::KeyComparator(const Schema* left_schema,
                             std::vector<int> left_cols,
                             const Schema* right_schema,
                             std::vector<int> right_cols)
    : left_schema_(left_schema),
      right_schema_(right_schema),
      left_cols_(std::move(left_cols)),
      right_cols_(std::move(right_cols)) {}

bool KeyComparator::Equal(const char* left_row, const char* right_row) const {
  for (size_t i = 0; i < left_cols_.size(); ++i) {
    int lc = left_cols_[i];
    int rc = right_cols_[i];
    switch (left_schema_->column(lc).type) {
      case DataType::kInt32:
      case DataType::kDate:
        if (left_schema_->GetInt32(left_row, lc) !=
            right_schema_->GetInt32(right_row, rc))
          return false;
        break;
      case DataType::kInt64:
        if (left_schema_->GetInt64(left_row, lc) !=
            right_schema_->GetInt64(right_row, rc))
          return false;
        break;
      case DataType::kFloat64:
        if (left_schema_->GetFloat64(left_row, lc) !=
            right_schema_->GetFloat64(right_row, rc))
          return false;
        break;
      case DataType::kChar:
        if (left_schema_->GetString(left_row, lc) !=
            right_schema_->GetString(right_row, rc))
          return false;
        break;
    }
  }
  return true;
}

// --- JoinHashTable -------------------------------------------------------------

JoinHashTable::JoinHashTable(const Schema* build_schema,
                             std::vector<int> build_keys, size_t num_buckets,
                             MemoryTracker* memory)
    : JoinHashTable(build_schema, std::move(build_keys), num_buckets,
                    MemSource{nullptr, memory, nullptr}) {}

JoinHashTable::JoinHashTable(const Schema* build_schema,
                             std::vector<int> build_keys, size_t num_buckets,
                             MemSource source)
    : build_schema_(build_schema),
      build_keys_(std::move(build_keys)),
      buckets_(RoundUpPow2(num_buckets == 0 ? 1 : num_buckets)),
      bucket_mask_(buckets_.size() - 1),
      arena_(1 << 18, source) {}

bool JoinHashTable::Insert(const char* row) {
  return Insert(row, HashRowKeys(*build_schema_, row, build_keys_));
}

bool JoinHashTable::Insert(const char* row, uint64_t h) {
  char* storage = arena_.Allocate(sizeof(Entry) + build_schema_->row_size());
  if (storage == nullptr) return false;
  auto* entry = reinterpret_cast<Entry*>(storage);
  entry->hash = h;
  std::memcpy(entry->row(), row, build_schema_->row_size());
  std::atomic<Entry*>& head = buckets_[h & bucket_mask_];
  Entry* expected = head.load(std::memory_order_relaxed);
  do {
    entry->next = expected;
  } while (!head.compare_exchange_weak(expected, entry,
                                       std::memory_order_release,
                                       std::memory_order_relaxed));
  size_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// --- AggHashTable --------------------------------------------------------------

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount: return "count";
    case AggFn::kSum: return "sum";
    case AggFn::kAvg: return "avg";
    case AggFn::kMin: return "min";
    case AggFn::kMax: return "max";
  }
  return "?";
}

AggHashTable::AggHashTable(Schema group_schema, int num_aggs,
                           size_t num_buckets, MemoryTracker* memory)
    : AggHashTable(std::move(group_schema), num_aggs, num_buckets,
                   MemSource{nullptr, memory, nullptr}) {}

AggHashTable::AggHashTable(Schema group_schema, int num_aggs,
                           size_t num_buckets, MemSource source)
    : group_schema_(std::move(group_schema)),
      all_group_cols_([this] {
        std::vector<int> cols(
            static_cast<size_t>(group_schema_.num_columns()));
        for (size_t i = 0; i < cols.size(); ++i) cols[i] = static_cast<int>(i);
        return cols;
      }()),
      group_cmp_(&group_schema_, all_group_cols_, &group_schema_,
                 all_group_cols_),
      group_row_size_(group_schema_.row_size()),
      num_aggs_(num_aggs),
      buckets_(RoundUpPow2(num_buckets == 0 ? 1 : num_buckets)),
      bucket_mask_(buckets_.size() - 1),
      arena_(1 << 18, source) {}

AggHashTable::Entry* AggHashTable::FindOrCreate(const char* group_row,
                                                uint64_t hash) {
  Bucket& bucket = buckets_[hash & bucket_mask_];
  // Lock-free lookup first.
  for (Entry* e = bucket.head.load(std::memory_order_acquire); e != nullptr;
       e = e->next) {
    if (e->hash == hash &&
        group_cmp_.Equal(e->row(group_row_size_), group_row)) {
      return e;
    }
  }
  // Slow path: exclusive insert for this bucket, re-check, then link.
  while (bucket.insert_lock.test_and_set(std::memory_order_acquire)) {
  }
  Entry* head = bucket.head.load(std::memory_order_relaxed);
  for (Entry* e = head; e != nullptr; e = e->next) {
    if (e->hash == hash &&
        group_cmp_.Equal(e->row(group_row_size_), group_row)) {
      bucket.insert_lock.clear(std::memory_order_release);
      return e;
    }
  }
  char* storage =
      arena_.Allocate(sizeof(Entry) + Entry::AlignUp(group_row_size_) +
                      sizeof(AggState) * static_cast<size_t>(num_aggs_));
  if (storage == nullptr) {
    // Release the bucket lock before failing or every other thread hashing
    // into this bucket would spin forever.
    bucket.insert_lock.clear(std::memory_order_release);
    return nullptr;
  }
  auto* entry = reinterpret_cast<Entry*>(storage);
  new (entry) Entry();
  entry->hash = hash;
  std::memcpy(entry->row(group_row_size_), group_row, group_row_size_);
  AggState* states = entry->states(group_row_size_, num_aggs_);
  for (int i = 0; i < num_aggs_; ++i) new (&states[i]) AggState();
  entry->next = head;
  bucket.head.store(entry, std::memory_order_release);
  bucket.insert_lock.clear(std::memory_order_release);
  size_.fetch_add(1, std::memory_order_relaxed);
  return entry;
}

bool AggHashTable::Update(const char* group_row, const std::vector<AggFn>& fns,
                          const double* values, const int64_t* count_weights) {
  return Update(group_row,
                HashRowKeys(group_schema_, group_row, all_group_cols_), fns,
                values, count_weights);
}

bool AggHashTable::Update(const char* group_row, uint64_t hash,
                          const std::vector<AggFn>& fns, const double* values,
                          const int64_t* count_weights, bool exclusive) {
  Entry* entry = FindOrCreate(group_row, hash);
  if (entry == nullptr) return false;
  AggState* states = entry->states(group_row_size_, num_aggs_);
  if (exclusive) {
    // Worker-private table: the caller is the only thread folding into it.
    for (int i = 0; i < num_aggs_; ++i) {
      FoldAgg(fns[i], values[i], count_weights[i], &states[i]);
    }
    return true;
  }
  // Per-entry spinlock: the contention point of shared aggregation.
  while (entry->lock.test_and_set(std::memory_order_acquire)) {
  }
  for (int i = 0; i < num_aggs_; ++i) {
    FoldAgg(fns[i], values[i], count_weights[i], &states[i]);
  }
  entry->lock.clear(std::memory_order_release);
  return true;
}

bool AggHashTable::UpdateBatch(const char* group_rows, int32_t stride,
                               const uint64_t* hashes, int32_t n,
                               const std::vector<AggFn>& fns,
                               const double* const* arg_cols, bool exclusive,
                               int32_t* folded) {
  const int num_aggs = num_aggs_;
  for (int32_t i = 0; i < n; ++i) {
    const char* row = group_rows + static_cast<size_t>(i) * stride;
    Entry* entry = FindOrCreate(row, hashes[i]);
    if (entry == nullptr) {
      if (folded != nullptr) *folded = i;
      return false;
    }
    AggState* states = entry->states(group_row_size_, num_aggs);
    if (!exclusive) {
      while (entry->lock.test_and_set(std::memory_order_acquire)) {
      }
    }
    for (int a = 0; a < num_aggs; ++a) {
      FoldAgg(fns[a], arg_cols[a] != nullptr ? arg_cols[a][i] : 0.0, 1,
              &states[a]);
    }
    if (!exclusive) entry->lock.clear(std::memory_order_release);
  }
  if (folded != nullptr) *folded = n;
  return true;
}

Status AggHashTable::SerializeTo(SpillRun* run) const {
  const int32_t header[2] = {group_row_size_, num_aggs_};
  Status s = run->Append(header, sizeof(header));
  if (!s.ok()) return s;
  const int64_t count = size();
  s = run->Append(&count, sizeof(count));
  if (!s.ok()) return s;
  Status append_status;
  ForEach([&](const char* group_row, const AggState* states) {
    if (!append_status.ok()) return;
    append_status = run->Append(group_row, group_row_size_);
    if (!append_status.ok()) return;
    append_status =
        run->Append(states, sizeof(AggState) * static_cast<size_t>(num_aggs_));
  });
  return append_status;
}

Status AggHashTable::MergeSerialized(const char* data, size_t bytes,
                                     const std::vector<AggFn>& fns,
                                     AggHashTable* into) {
  if (bytes < sizeof(int32_t) * 2 + sizeof(int64_t)) {
    return Status::Internal("spill run truncated header");
  }
  int32_t group_row_size = 0;
  int32_t num_aggs = 0;
  int64_t count = 0;
  std::memcpy(&group_row_size, data, sizeof(group_row_size));
  std::memcpy(&num_aggs, data + sizeof(int32_t), sizeof(num_aggs));
  std::memcpy(&count, data + sizeof(int32_t) * 2, sizeof(count));
  if (group_row_size != into->group_row_size_ || num_aggs != into->num_aggs_ ||
      num_aggs > 16) {
    return Status::Internal("spill run layout mismatch");
  }
  const size_t entry_bytes =
      static_cast<size_t>(group_row_size) +
      sizeof(AggState) * static_cast<size_t>(num_aggs);
  const char* p = data + sizeof(int32_t) * 2 + sizeof(int64_t);
  const char* end = data + bytes;
  double values[16];
  int64_t weights[16];
  for (int64_t i = 0; i < count; ++i) {
    if (p + entry_bytes > end) {
      return Status::Internal("spill run truncated entry");
    }
    const char* group_row = p;
    // Identical fold rules to a live MergeInto: partial sums / running
    // min-max as values, partial counts as weights (count == 0 marks MIN/MAX
    // unset, so merging preserves first-fold semantics). memcpy because the
    // packed run does not align AggStates after an odd-sized group row.
    for (int a = 0; a < num_aggs; ++a) {
      AggState st;
      std::memcpy(&st, p + group_row_size + sizeof(AggState) * a, sizeof(st));
      values[a] = st.sum;
      weights[a] = st.count;
    }
    if (!into->Update(group_row, fns, values, weights)) {
      return Status::ResourceExhausted("agg table over budget during restore");
    }
    p += entry_bytes;
  }
  return Status::OK();
}

}  // namespace claims
