#include "engine/database.h"

namespace claims {

Database::Database(DatabaseOptions options) : options_(std::move(options)) {
  options_.planner.num_nodes = options_.cluster.num_nodes;
  cluster_ = std::make_unique<Cluster>(options_.cluster, &catalog_);
  executor_ = std::make_unique<Executor>(cluster_.get());
}

Status Database::LoadTpch(TpchConfig config) {
  config.num_partitions = options_.cluster.num_nodes;
  return GenerateTpch(config, &catalog_);
}

Status Database::LoadSse(SseConfig config) {
  config.num_partitions = options_.cluster.num_nodes;
  return GenerateSse(config, &catalog_);
}

Result<PhysicalPlan> Database::Plan(std::string_view sql) {
  Planner planner(&catalog_, options_.planner);
  return planner.PlanSql(sql);
}

Result<ResultSet> Database::Query(std::string_view sql, ExecOptions exec) {
  CLAIMS_ASSIGN_OR_RETURN(PhysicalPlan plan, Plan(sql));
  CLAIMS_ASSIGN_OR_RETURN(ResultSet result, executor_->Execute(plan, exec));
  if (plan.limit >= 0) result.TruncateRows(plan.limit);
  return result;
}

Result<std::string> Database::Explain(std::string_view sql) {
  CLAIMS_ASSIGN_OR_RETURN(PhysicalPlan plan, Plan(sql));
  return plan.ToString();
}

}  // namespace claims
