#ifndef CLAIMS_ENGINE_WORKLOADS_H_
#define CLAIMS_ENGINE_WORKLOADS_H_

#include <string_view>
#include <vector>

#include "common/status.h"

namespace claims {

/// The paper's §5.1 synthetic TPC-H micro-benchmark queries S-Q1..S-Q5
/// (scalability of filter / aggregation / join).
Result<std::string_view> SyntheticQuery(int number);

/// The paper's Stock-Exchange queries SSE-Q6..SSE-Q9 (§5.1; Q9 is the Fig. 1
/// running example and the §5.3 case study).
Result<std::string_view> SseQuery(int number);

/// TPC-H queries in the subset CLAIMS supports (paper Table 7):
/// Q1, Q2*, Q3, Q5, Q6, Q7, Q8, Q9, Q10, Q12, Q14.
/// (*) Q2 is expressed in its standard decorrelated form — the correlated
/// MIN subquery becomes a grouped derived table joined back on part key —
/// since the engine, like CLAIMS, does not evaluate correlated subqueries.
/// Q7/Q8/Q9 are flattened (no derived table) with YEAR() in GROUP BY, which
/// is semantically identical.
Result<std::string_view> TpchQuery(int number);

/// The TPC-H query numbers supported (the paper's Table 7 rows).
const std::vector<int>& SupportedTpchQueries();

}  // namespace claims

#endif  // CLAIMS_ENGINE_WORKLOADS_H_
