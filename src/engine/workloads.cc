#include "engine/workloads.h"

#include "common/string_util.h"

namespace claims {

namespace {

// --- Synthetic queries (paper §5.1) ----------------------------------------------

constexpr std::string_view kSQ1 =
    "SELECT * FROM orders "
    "WHERE o_comment NOT LIKE '%special%requests%'";

constexpr std::string_view kSQ2 =
    "SELECT * FROM orders WHERE o_orderdate < '1995-01-01'";

constexpr std::string_view kSQ3 =
    "SELECT l_returnflag, l_linestatus, sum(l_quantity), avg(l_discount) "
    "FROM lineitem GROUP BY l_returnflag, l_linestatus";

constexpr std::string_view kSQ4 =
    "SELECT l_commitdate, sum(l_quantity), avg(l_discount) "
    "FROM lineitem GROUP BY l_commitdate";

constexpr std::string_view kSQ5 =
    "SELECT * FROM orders, lineitem WHERE l_orderkey = o_orderkey";

// --- SSE queries (paper §5.1) ------------------------------------------------------

constexpr std::string_view kSseQ6 =
    "SELECT count(*) FROM trades T, securities S "
    "WHERE S.sec_code = 600036 AND T.trade_date = '2010-10-30' "
    "AND S.acct_id = T.acct_id";

constexpr std::string_view kSseQ7 =
    "SELECT acct_id, sum(trade_volume) FROM trades GROUP BY acct_id";

constexpr std::string_view kSseQ8 =
    "SELECT acct_id, sec_code, sum(trade_volume) FROM trades "
    "WHERE trade_date = '2010-10-10' GROUP BY acct_id, sec_code";

constexpr std::string_view kSseQ9 =
    "SELECT T.sec_code, S.acct_id, sum(trade_volume), sum(entry_volume) "
    "FROM trades T, securities S "
    "WHERE T.trade_date = '2010-10-30' AND S.entry_date = '2010-10-30' "
    "AND T.acct_id = S.acct_id "
    "GROUP BY T.sec_code, S.acct_id";

// --- TPC-H -------------------------------------------------------------------------

constexpr std::string_view kQ1 =
    "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, "
    "sum(l_extendedprice) AS sum_base_price, "
    "sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
    "sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge, "
    "avg(l_quantity) AS avg_qty, avg(l_extendedprice) AS avg_price, "
    "avg(l_discount) AS avg_disc, count(*) AS count_order "
    "FROM lineitem WHERE l_shipdate <= '1998-09-02' "
    "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus";

constexpr std::string_view kQ2 =
    "SELECT s_acctbal, s_name, n_name, p_partkey, p_mfgr "
    "FROM part, supplier, partsupp, nation, region, "
    "(SELECT ps_partkey AS mc_partkey, min(ps_supplycost) AS mc_cost "
    " FROM partsupp GROUP BY ps_partkey) mincost "
    "WHERE p_partkey = ps_partkey AND s_suppkey = ps_suppkey "
    "AND p_size = 15 AND p_type LIKE '%BRASS' "
    "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
    "AND r_name = 'EUROPE' "
    "AND mc_partkey = p_partkey AND ps_supplycost = mc_cost "
    "ORDER BY s_acctbal DESC, n_name, s_name, p_partkey LIMIT 100";

constexpr std::string_view kQ3 =
    "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue, "
    "o_orderdate, o_shippriority "
    "FROM customer, orders, lineitem "
    "WHERE c_mktsegment = 'BUILDING' AND c_custkey = o_custkey "
    "AND l_orderkey = o_orderkey AND o_orderdate < '1995-03-15' "
    "AND l_shipdate > '1995-03-15' "
    "GROUP BY l_orderkey, o_orderdate, o_shippriority "
    "ORDER BY revenue DESC, o_orderdate LIMIT 10";

constexpr std::string_view kQ5 =
    "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM customer, orders, lineitem, supplier, nation, region "
    "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
    "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
    "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
    "AND r_name = 'ASIA' AND o_orderdate >= '1994-01-01' "
    "AND o_orderdate < '1995-01-01' "
    "GROUP BY n_name ORDER BY revenue DESC";

constexpr std::string_view kQ6 =
    "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem "
    "WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' "
    "AND l_discount BETWEEN 0.05 AND 0.07 AND l_quantity < 24";

constexpr std::string_view kQ7 =
    "SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation, "
    "YEAR(l_shipdate) AS l_year, "
    "sum(l_extendedprice * (1 - l_discount)) AS revenue "
    "FROM supplier, lineitem, orders, customer, nation n1, nation n2 "
    "WHERE s_suppkey = l_suppkey AND o_orderkey = l_orderkey "
    "AND c_custkey = o_custkey AND s_nationkey = n1.n_nationkey "
    "AND c_nationkey = n2.n_nationkey "
    "AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY') "
    "  OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE')) "
    "AND l_shipdate BETWEEN '1995-01-01' AND '1996-12-31' "
    "GROUP BY n1.n_name, n2.n_name, YEAR(l_shipdate) "
    "ORDER BY supp_nation, cust_nation, l_year";

constexpr std::string_view kQ8 =
    "SELECT YEAR(o_orderdate) AS o_year, "
    "sum(CASE WHEN n2.n_name = 'BRAZIL' "
    "    THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) / "
    "sum(l_extendedprice * (1 - l_discount)) AS mkt_share "
    "FROM part, supplier, lineitem, orders, customer, nation n1, nation n2, "
    "region "
    "WHERE p_partkey = l_partkey AND s_suppkey = l_suppkey "
    "AND l_orderkey = o_orderkey AND o_custkey = c_custkey "
    "AND c_nationkey = n1.n_nationkey AND n1.n_regionkey = r_regionkey "
    "AND r_name = 'AMERICA' AND s_nationkey = n2.n_nationkey "
    "AND o_orderdate BETWEEN '1995-01-01' AND '1996-12-31' "
    "AND p_type = 'ECONOMY ANODIZED STEEL' "
    "GROUP BY YEAR(o_orderdate) ORDER BY o_year";

constexpr std::string_view kQ9 =
    "SELECT n_name AS nation, YEAR(o_orderdate) AS o_year, "
    "sum(l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity) "
    "AS sum_profit "
    "FROM part, supplier, lineitem, partsupp, orders, nation "
    "WHERE s_suppkey = l_suppkey AND ps_suppkey = l_suppkey "
    "AND ps_partkey = l_partkey AND p_partkey = l_partkey "
    "AND o_orderkey = l_orderkey AND s_nationkey = n_nationkey "
    "AND p_name LIKE '%green%' "
    "GROUP BY n_name, YEAR(o_orderdate) ORDER BY nation, o_year DESC";

constexpr std::string_view kQ10 =
    "SELECT c_custkey, c_name, "
    "sum(l_extendedprice * (1 - l_discount)) AS revenue, c_acctbal, n_name, "
    "c_address, c_phone, c_comment "
    "FROM customer, orders, lineitem, nation "
    "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
    "AND o_orderdate >= '1993-10-01' AND o_orderdate < '1994-01-01' "
    "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
    "GROUP BY c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, "
    "c_comment ORDER BY revenue DESC LIMIT 20";

constexpr std::string_view kQ12 =
    "SELECT l_shipmode, "
    "sum(CASE WHEN o_orderpriority = '1-URGENT' "
    "      OR o_orderpriority = '2-HIGH' THEN 1 ELSE 0 END) "
    "AS high_line_count, "
    "sum(CASE WHEN o_orderpriority <> '1-URGENT' "
    "     AND o_orderpriority <> '2-HIGH' THEN 1 ELSE 0 END) "
    "AS low_line_count "
    "FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND l_shipmode IN ('MAIL', 'SHIP') "
    "AND l_commitdate < l_receiptdate AND l_shipdate < l_commitdate "
    "AND l_receiptdate >= '1994-01-01' AND l_receiptdate < '1995-01-01' "
    "GROUP BY l_shipmode ORDER BY l_shipmode";

constexpr std::string_view kQ14 =
    "SELECT 100.00 * sum(CASE WHEN p_type LIKE 'PROMO%' "
    "    THEN l_extendedprice * (1 - l_discount) ELSE 0.0 END) / "
    "sum(l_extendedprice * (1 - l_discount)) AS promo_revenue "
    "FROM lineitem, part "
    "WHERE l_partkey = p_partkey AND l_shipdate >= '1995-09-01' "
    "AND l_shipdate < '1995-10-01'";

}  // namespace

Result<std::string_view> SyntheticQuery(int number) {
  switch (number) {
    case 1: return kSQ1;
    case 2: return kSQ2;
    case 3: return kSQ3;
    case 4: return kSQ4;
    case 5: return kSQ5;
  }
  return Status::NotFound(StrFormat("no synthetic query S-Q%d", number));
}

Result<std::string_view> SseQuery(int number) {
  switch (number) {
    case 6: return kSseQ6;
    case 7: return kSseQ7;
    case 8: return kSseQ8;
    case 9: return kSseQ9;
  }
  return Status::NotFound(StrFormat("no SSE query SSE-Q%d", number));
}

Result<std::string_view> TpchQuery(int number) {
  switch (number) {
    case 1: return kQ1;
    case 2: return kQ2;
    case 3: return kQ3;
    case 5: return kQ5;
    case 6: return kQ6;
    case 7: return kQ7;
    case 8: return kQ8;
    case 9: return kQ9;
    case 10: return kQ10;
    case 12: return kQ12;
    case 14: return kQ14;
  }
  return Status::NotFound(
      StrFormat("TPC-H Q%d is not in the supported subset", number));
}

const std::vector<int>& SupportedTpchQueries() {
  static const std::vector<int>* queries =
      new std::vector<int>{1, 2, 3, 5, 6, 7, 8, 9, 10, 12, 14};
  return *queries;
}

}  // namespace claims
