#ifndef CLAIMS_ENGINE_DATABASE_H_
#define CLAIMS_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "cluster/executor.h"
#include "sql/planner.h"
#include "storage/datagen/sse_gen.h"
#include "storage/datagen/tpch_gen.h"

namespace claims {

struct DatabaseOptions {
  ClusterOptions cluster;
  PlannerOptions planner;  ///< num_nodes is forced to cluster.num_nodes
};

/// The top-level public API — an in-process elastic-pipelining in-memory
/// database cluster. Typical use:
///
///   DatabaseOptions options;
///   options.cluster.num_nodes = 4;
///   Database db(options);
///   db.LoadTpch({.scale_factor = 0.01});
///   auto result = db.Query("SELECT count(*) FROM lineitem");
///   std::cout << result->ToString();
///
/// Query() runs one statement at a time on this object. For concurrent
/// streams, plan here and submit the plans to a QueryService (src/wlm) over
/// cluster() — the workload manager runs many executors at once (the
/// multi-query scheduling the paper defers to future work in §7).
class Database {
 public:
  explicit Database(DatabaseOptions options = DatabaseOptions());

  Catalog* catalog() { return &catalog_; }
  Cluster* cluster() { return cluster_.get(); }
  const DatabaseOptions& options() const { return options_; }

  /// Generates TPC-H tables partitioned across the cluster nodes.
  Status LoadTpch(TpchConfig config);

  /// Generates the synthetic Stock-Exchange dataset (paper §5.1).
  Status LoadSse(SseConfig config);

  /// Parses, optimizes, and runs `sql`; applies LIMIT at the collector.
  Result<ResultSet> Query(std::string_view sql,
                          ExecOptions exec = ExecOptions());

  /// The distributed physical plan for `sql`, rendered as text.
  Result<std::string> Explain(std::string_view sql);

  /// Plan without executing (for benches that instrument execution).
  Result<PhysicalPlan> Plan(std::string_view sql);

  /// Execution metrics of the most recent Query call.
  const ExecStats& last_stats() const { return executor_->stats(); }
  Executor* executor() { return executor_.get(); }

 private:
  DatabaseOptions options_;
  Catalog catalog_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<Executor> executor_;
};

}  // namespace claims

#endif  // CLAIMS_ENGINE_DATABASE_H_
