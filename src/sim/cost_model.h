#ifndef CLAIMS_SIM_COST_MODEL_H_
#define CLAIMS_SIM_COST_MODEL_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

namespace claims {

/// Hardware parameters of one simulated node, defaulting to the paper's
/// testbed (Table 3: 2 sockets × 6 physical / 12 logical cores each, gigabit
/// Ethernet). All values are *inputs* to the simulation, not claims; see
/// DESIGN.md §5.
struct SimHardware {
  int physical_cores = 12;
  int logical_cores = 24;
  /// Throughput contribution of a hyper-thread beyond the physical cores —
  /// reproduces the ≤12-core knee of Fig. 8.
  double ht_efficiency = 0.35;
  /// Aggregate per-node memory bandwidth available to the query engine.
  /// Data-intensive operators saturate it around 8 workers (Fig. 8a, S-Q2).
  double mem_bandwidth_bytes_per_sec = 12e9;
  /// Gigabit NIC, full duplex.
  double nic_bytes_per_sec = 125e6;
  /// OS scheduling quantum (time-shared baselines IS/MDP at c > 1).
  int64_t os_quantum_ns = 10'000'000;
  /// Direct cost of one context switch.
  int64_t context_switch_ns = 20'000;
  /// Cache-refill slowdown applied while time-shared (models the
  /// cache-thrashing the paper measures in Table 5: IS at c=5 reaches ~88%
  /// CPU utilization yet runs ~2.3x slower than EP).
  double switch_cache_penalty = 0.9;

  /// Total effective core-throughput with `active` busy workers (plateau
  /// beyond the logical core count).
  double EffectiveCapacity(int active) const {
    if (active <= physical_cores) return active;
    int ht = std::min(active, logical_cores) - physical_cores;
    return physical_cores + ht_efficiency * ht;
  }
};

/// Per-tuple cost coefficients of the operator kinds (ns on one core /
/// bytes of memory traffic). Calibrated so single-threaded throughputs sit
/// in the ranges implied by the paper's runtimes at SF100.
struct SimCostParams {
  // Interpreted row-at-a-time engine (the paper notes LLVM codegen would
  // accelerate filters by up to two orders of magnitude, §5.4 — i.e. CLAIMS
  // evaluates tuples in the hundreds of nanoseconds).
  double scan_ns = 40.0;
  double scan_bytes_factor = 1.0;    // scan traffic = row bytes
  double filter_ns = 60.0;           // cheap comparison predicate
  double filter_like_ns = 550.0;     // LIKE pattern matching (S-Q1)
  double project_ns_per_col = 10.0;
  double join_build_ns = 120.0;      // CAS insert into the shared table
  double join_probe_ns = 90.0;
  double agg_update_ns = 80.0;
  double agg_lock_ns = 200.0;        // critical section of a shared update
  double sort_ns = 200.0;
  double exchange_pack_ns = 25.0;    // sender-side partition+copy
  double exchange_merge_ns = 20.0;   // merger-side receive
  /// Cold-cache slowdown a morsel-pool worker pays on a unit of a different
  /// segment than its previous one (paper §5.3: EP cores "focus on the data
  /// processing in their assigned segments, which helps to retain good cache
  /// locality").
  double pool_switch_penalty = 0.35;
  /// Per-decision costs of the schedulers (Table 5's scheduling overhead).
  double ep_tick_ns_per_segment = 40'000.0;
  double mdp_pickup_ns = 1'500.0;
  double mdp_plus_pickup_ns = 4'000.0;
};

/// Cost of one shared-aggregation update under contention: `p` workers
/// hammering `groups` hot entries serialize on the per-entry locks (paper
/// Fig. 8b: S-Q3's 4 groups vs S-Q4's 250M).
double SharedUpdatePenaltyNs(const SimCostParams& params, int p,
                             int64_t groups);

}  // namespace claims

#endif  // CLAIMS_SIM_COST_MODEL_H_
