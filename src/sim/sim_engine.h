#ifndef CLAIMS_SIM_SIM_ENGINE_H_
#define CLAIMS_SIM_SIM_ENGINE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/exchange.h"
#include "core/scheduler.h"
#include "fault/fault_plan.h"
#include "sim/cost_model.h"
#include "sim/event_queue.h"

namespace claims {

/// Per-stage workload profile of a simulated segment (virtual-time cluster
/// simulator; see DESIGN.md §1/§5 for why the figures run on this substrate).
struct SimStageProfile {
  double cpu_ns_per_tuple = 10.0;
  /// Memory traffic; the node's bandwidth cap throttles data-bound stages.
  double mem_bytes_per_tuple = 0.0;
  double selectivity = 1.0;
  int in_row_bytes = 16;
  int out_row_bytes = 16;
  /// Shared-state hot-entry count; >0 enables the lock-contention model
  /// (shared aggregation, Fig. 8b). 0 = contention-free.
  int64_t contention_groups = 0;
  /// Cap on the iterator state a build stage accumulates (aggregation states
  /// stop growing once every group exists); 0 = unbounded (join tables).
  int64_t max_state_bytes = 0;
  /// Optional position-dependent selectivity (Fig. 11): maps the fraction of
  /// the node's stage input already consumed to the selectivity there.
  std::function<double(double)> selectivity_at;
};

/// One stage of a segment (paper §2.1: a segment runs one active stage at a
/// time; a hash join contributes a build stage and a probe stage).
struct SimStageSpec {
  /// Input: exchange id (fed by upstream segments), or a local source of
  /// `source_tuples_per_node` tuples when negative.
  int input_exchange = -1;
  int64_t source_tuples_per_node = 0;
  SimStageProfile profile;
  /// Build stages fold into iterator state and emit nothing.
  bool emits = true;
};

struct SimSegmentSpec {
  std::string name;
  std::vector<int> nodes;
  std::vector<SimStageSpec> stages;
  int out_exchange = 0;
  Partitioning partitioning = Partitioning::kToOne;
  std::vector<int> consumer_nodes;
};

struct SimQuerySpec {
  std::vector<SimSegmentSpec> segments;  ///< topological order
  int result_exchange = 0;
};

/// Execution/scheduling frameworks of the paper's evaluation (§5.3–5.4).
enum class SimPolicy {
  kElastic,       ///< EP: this paper (DynamicScheduler, Algorithm 1)
  kStatic,        ///< SP: fixed compile-time parallelism
  kMaterialized,  ///< ME: group-at-a-time with full materialization
  kImplicit,      ///< IS [24]: c·m threads, OS time-sharing
  kMorsel,        ///< MDP [19]: worker pool, random unit pickup
  kMorselPlus,    ///< MDP+: pool with this paper's bottleneck-aware pickup
};

const char* SimPolicyName(SimPolicy policy);

struct SimOptions {
  int num_nodes = 10;
  SimHardware hardware;
  SimCostParams costs;
  SimPolicy policy = SimPolicy::kElastic;
  /// EP: initial parallelism; SP/ME: the fixed parallelism.
  int parallelism = 1;
  /// IS/MDP/MDP+: worker threads per node = concurrency_level × logical
  /// cores (the paper's c).
  double concurrency_level = 1.0;
  /// MDP executable-unit size (64 KB default; Table 5 also tests 8 KB).
  int64_t unit_bytes = 64 * 1024;
  int channel_capacity_blocks = 64;
  int64_t scheduler_period_ns = 50'000'000;
  SchedulerOptions scheduler;
  /// Time-varying node capacity multiplier (Fig. 12's interfering program).
  std::function<double(int64_t)> node_capacity_at;
  /// Watchdog: abort the simulation past this virtual time.
  int64_t max_sim_ns = 7'200'000'000'000LL;
  /// Static pipelines (SP/ME/IS) pre-partition each scan's dataflow
  /// exclusively across their fixed workers (paper Fig. 2a); partition sizes
  /// vary with this coefficient of variation, so the slowest partition's
  /// tail dominates — one of the two inefficiencies EP removes. Elastic and
  /// morsel policies share a cursor and are immune.
  double partition_skew_cv = 0.35;
  /// Utilization accounting window (Table 6's time slices).
  int64_t utilization_window_ns = 1'000'000'000;
  /// High-utilization threshold θ_u (§5.4).
  double high_utilization_threshold = 0.95;
  uint64_t seed = 7;
  /// Causal-profiler identity: with the global QueryProfiler armed and this
  /// non-zero, the simulator emits kSegment/kNetSend/kNetRecv spans at
  /// virtual time under this query id, with the same
  /// {exchange, from, to, wire_seq} link keys as the real fabric — profiles
  /// assemble identically from either substrate. 0 (default) emits nothing.
  uint64_t profile_query_id = 0;
  /// Chaos schedule rendered in virtual time. The simulator's lossless
  /// fabric has no retransmission model, so only the capacity faults apply:
  /// kStraggleNode scales the node's worker speed by 1/slowdown_factor and
  /// kDegradeNic caps the node's NIC rate for the window. Loss faults
  /// (drop/delay/dup/disconnect) and kCrashNode are real-engine-only
  /// (docs/FAULTS.md); the plan's per-send probabilities are ignored here.
  FaultPlan fault_plan;
};

/// Parallelism trace sample (Figs. 10–12).
struct SimTracePoint {
  int64_t t_ns;
  std::vector<int> parallelism;  ///< per segment spec, on the traced node
};

struct SimMetrics {
  int64_t response_ns = 0;
  double avg_cpu_utilization = 0;      ///< busy cores / logical cores
  double high_utilization_rate = 0;    ///< fraction of windows ≥ θ_u (cpu|net)
  double context_switches_per_sec = 0;
  double scheduling_overhead = 0;      ///< sched CPU time / response time
  double cache_miss_ratio = 0;         ///< modelled proxy (DESIGN.md §1)
  int64_t peak_memory_bytes = 0;       ///< channels + iterator state
  int64_t network_bytes = 0;
  std::vector<SimTracePoint> trace;    ///< on node 0
  /// Virtual time each traced segment entered its final stage (probe start;
  /// Fig. 13 build/probe split) — per segment spec index, -1 if single-stage.
  std::vector<int64_t> stage_switch_ns;
  /// First virtual time after which node-0 parallelism stayed within ±1 of
  /// its final per-phase value (Fig. 13 convergence delay, approximated).
  int64_t convergence_ns = 0;
  /// Virtual-time fault transitions (FormatFaultEventLog); byte-identical
  /// across runs of the same spec + options — the determinism artifact the
  /// chaos tests diff. Empty when fault_plan has no applicable faults.
  std::string fault_log;
};

/// Runs one simulated query. Single-shot object; deterministic given the
/// spec, options, and seed.
class SimRun {
 public:
  SimRun(SimQuerySpec spec, SimOptions options);
  ~SimRun();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(SimRun);

  Result<SimMetrics> Run();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace claims

#endif  // CLAIMS_SIM_SIM_ENGINE_H_
