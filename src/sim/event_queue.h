#ifndef CLAIMS_SIM_EVENT_QUEUE_H_
#define CLAIMS_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"

namespace claims {

/// Virtual-time clock driven by the event queue. Injected (as claims::Clock)
/// into the *real* DynamicScheduler / SegmentStats code, so the scheduler
/// logic under test is byte-for-byte the production implementation; only the
/// notion of time differs (see DESIGN.md §1 substitutions).
class SimClock : public Clock {
 public:
  int64_t NowNanos() const override { return now_; }
  void set_now(int64_t ns) { now_ = ns; }

  /// A timed wait in virtual time advances the clock instead of sleeping —
  /// components like TokenBucket::Acquire terminate deterministically and
  /// instantly under simulation. (The simulator is single-threaded, so the
  /// unsynchronized bump is safe.)
  void SleepNanos(int64_t ns) override { now_ += ns; }

 private:
  int64_t now_ = 0;
};

/// Deterministic discrete-event core: events fire in (time, insertion order).
/// Single-threaded; all simulated concurrency is event interleaving, which
/// makes every figure in bench/ reproduce bit-identically.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(EventQueue);

  SimClock* clock() { return &clock_; }
  int64_t now() const { return clock_.NowNanos(); }

  /// Schedules `cb` at absolute virtual time `at_ns` (clamped to now).
  void Schedule(int64_t at_ns, Callback cb);
  /// Schedules `cb` `delay_ns` from now.
  void ScheduleAfter(int64_t delay_ns, Callback cb) {
    Schedule(now() + delay_ns, std::move(cb));
  }

  bool empty() const { return events_.empty(); }
  size_t size() const { return events_.size(); }

  /// Pops and runs the earliest event; false when empty.
  bool RunNext();

  /// Runs events until the queue drains or virtual time passes `deadline_ns`.
  /// Returns false if the deadline was hit with events still pending.
  bool RunUntil(int64_t deadline_ns);

  int64_t events_executed() const { return executed_; }

 private:
  struct Event {
    int64_t at_ns;
    int64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at_ns != b.at_ns) return a.at_ns > b.at_ns;
      return a.seq > b.seq;
    }
  };

  SimClock clock_;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
  int64_t next_seq_ = 0;
  int64_t executed_ = 0;
};

}  // namespace claims

#endif  // CLAIMS_SIM_EVENT_QUEUE_H_
