#include "sim/cost_model.h"

#include <algorithm>

namespace claims {

double SharedUpdatePenaltyNs(const SimCostParams& params, int p,
                             int64_t groups) {
  if (groups <= 0) return 0;
  // Expected serialization per update: with p workers and `groups` hot
  // entries, a worker collides with (p-1)/groups others on average and waits
  // out their critical sections.
  double collisions = static_cast<double>(p - 1) / static_cast<double>(groups);
  return params.agg_lock_ns * std::max(0.0, collisions);
}

}  // namespace claims
