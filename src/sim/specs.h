#ifndef CLAIMS_SIM_SPECS_H_
#define CLAIMS_SIM_SPECS_H_

#include "sim/sim_engine.h"

namespace claims {

/// Paper-scale SSE dataset parameters (§5.1: >840M rows per table, 10 nodes,
/// three months of trading days). The profiles below encode the Fig. 1 /
/// §5.3 query plans with an interpreted-row-engine cost model (the paper
/// notes LLVM codegen would speed filters by up to two orders of magnitude,
/// §5.4 — i.e., CLAIMS evaluates tuples in the hundreds of ns).
struct SseSimParams {
  int num_nodes = 10;
  int64_t trades_rows = 840'000'000;
  int64_t securities_rows = 840'000'000;
  /// Fraction of Trades on the queried day. The paper's case study behaves
  /// as if the day carries a large share (network becomes the bottleneck in
  /// Fig. 10), so the default models a heavy trading day.
  double trades_day_selectivity = 0.20;
  double securities_day_selectivity = 0.20;
  /// Average filtered-Securities matches per filtered-Trades tuple.
  double join_fanout = 1.0;
  /// Distinct (sec_code, acct_id) groups in the answer.
  int64_t result_groups = 20'000'000;
  /// Per-tuple CPU multiplier over the base cost table (CLAIMS' interpreted
  /// operators on the paper's workload sit around 250 ns/tuple).
  double cpu_scale = 4.0;
  int trades_row_bytes = 40;
  int securities_row_bytes = 40;
  int shuffle_row_bytes = 24;
};

/// SSE-Q9 under the paper's Fig. 1 plan: S1 = scan+filter(T) → repartition
/// on acct_id; S2 = join (build from S1's stream, probe local scan(S)) →
/// repartition on sec_code; S3 = aggregation → master.
SimQuerySpec SseQ9Spec(const SseSimParams& params, const SimCostParams& costs);

/// SSE-Q6: filtered repartition join + global count.
SimQuerySpec SseQ6Spec(const SseSimParams& params, const SimCostParams& costs);
/// SSE-Q7: full-table repartitioned aggregation (group by acct_id).
SimQuerySpec SseQ7Spec(const SseSimParams& params, const SimCostParams& costs);
/// SSE-Q8: one-day filtered repartitioned aggregation.
SimQuerySpec SseQ8Spec(const SseSimParams& params, const SimCostParams& costs);

/// Fig. 8 micro-benchmarks: one node, one segment, fixed parallelism.
/// `rows` is the per-node input size.
SimQuerySpec MicroFilterSpec(bool compute_intensive, int64_t rows,
                             const SimCostParams& costs);
SimQuerySpec MicroAggSpec(bool shared, int64_t groups, int64_t rows,
                          const SimCostParams& costs);
/// Join micro-benchmark; `build_phase` selects the measured phase.
SimQuerySpec MicroJoinSpec(bool build_phase, int64_t rows,
                           const SimCostParams& costs);

/// Approximate SF-100 profile of one supported TPC-H query on the paper's
/// 10-node cluster; encodes the pipeline topology (builds, shuffles, groups)
/// the planner would produce.
struct TpchSimProfile {
  int number = 1;
  int64_t probe_rows_per_node = 60'000'000;  // driving table share
  double probe_cpu_ns = 120;                 // scan+filter+probe+agg chain
  double probe_mem_bytes = 120;
  double filter_selectivity = 1.0;
  struct Build {
    int64_t rows_per_node;
    bool broadcast;
    double cpu_ns;
  };
  std::vector<Build> builds;
  bool agg_shuffle = false;  // repartition on the group key before the agg
  int shuffle_row_bytes = 24;
  int64_t groups = 1;
  double agg_cpu_ns = 30;
};

/// The calibrated profile table for Q1..Q14 (supported subset).
Result<TpchSimProfile> TpchProfileFor(int number);

/// Builds the simulator topology for a TPC-H profile.
SimQuerySpec TpchSpec(const TpchSimProfile& profile, int num_nodes,
                      const SimCostParams& costs);

/// Merges several queries into one simulated workload running concurrently
/// on shared hardware — the multi-query interference scenario the workload
/// manager faces. Exchange ids are renumbered into disjoint per-query
/// namespaces (mirroring ExecOptions::exchange_id_base on the real path),
/// segment names gain a "#q<i>" suffix, and every query's final segment is
/// rerouted to one shared auto-drained result exchange.
SimQuerySpec CombineSpecs(const std::vector<SimQuerySpec>& queries);

}  // namespace claims

#endif  // CLAIMS_SIM_SPECS_H_
