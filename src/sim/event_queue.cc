#include "sim/event_queue.h"

#include <algorithm>

namespace claims {

void EventQueue::Schedule(int64_t at_ns, Callback cb) {
  events_.push(Event{std::max(at_ns, now()), next_seq_++, std::move(cb)});
}

bool EventQueue::RunNext() {
  if (events_.empty()) return false;
  // priority_queue::top is const; move out via const_cast on the callback
  // (safe: the event is popped immediately after).
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  clock_.set_now(event.at_ns);
  ++executed_;
  event.cb();
  return true;
}

bool EventQueue::RunUntil(int64_t deadline_ns) {
  while (!events_.empty()) {
    if (events_.top().at_ns > deadline_ns) return false;
    RunNext();
  }
  return true;
}

}  // namespace claims
