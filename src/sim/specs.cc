#include "sim/specs.h"

#include "common/string_util.h"

namespace claims {

namespace {

std::vector<int> NodeList(int k) {
  std::vector<int> nodes;
  for (int i = 0; i < k; ++i) nodes.push_back(i);
  return nodes;
}

}  // namespace

SimQuerySpec SseQ9Spec(const SseSimParams& p, const SimCostParams& c) {
  SimQuerySpec spec;
  const std::vector<int> all = NodeList(p.num_nodes);
  const int64_t trades_per_node = p.trades_rows / p.num_nodes;
  const int64_t securities_per_node = p.securities_rows / p.num_nodes;

  // S1: scan1 + filter1 + sender (repartition on acct_id).
  SimSegmentSpec s1;
  s1.name = "S1";
  s1.nodes = all;
  SimStageSpec scan_t;
  scan_t.source_tuples_per_node = trades_per_node;
  scan_t.profile.cpu_ns_per_tuple =
      (c.scan_ns + c.filter_ns + c.exchange_pack_ns) * p.cpu_scale;
  scan_t.profile.mem_bytes_per_tuple = p.trades_row_bytes;
  scan_t.profile.selectivity = p.trades_day_selectivity;
  scan_t.profile.in_row_bytes = p.trades_row_bytes;
  scan_t.profile.out_row_bytes = p.shuffle_row_bytes;
  s1.stages.push_back(scan_t);
  s1.out_exchange = 0;
  s1.partitioning = Partitioning::kHash;
  s1.consumer_nodes = all;
  spec.segments.push_back(std::move(s1));

  // S2: join — build from exchange 0, probe the local Securities scan;
  // repartition the join output on sec_code.
  SimSegmentSpec s2;
  s2.name = "S2";
  s2.nodes = all;
  SimStageSpec build;
  build.input_exchange = 0;
  build.profile.cpu_ns_per_tuple =
      (c.exchange_merge_ns + c.join_build_ns) * p.cpu_scale;
  build.profile.mem_bytes_per_tuple = p.shuffle_row_bytes * 2;
  build.profile.in_row_bytes = p.shuffle_row_bytes;
  build.emits = false;
  s2.stages.push_back(build);
  SimStageSpec probe;
  probe.source_tuples_per_node = securities_per_node;
  probe.profile.cpu_ns_per_tuple =
      (c.scan_ns + c.filter_ns + c.join_probe_ns + c.exchange_pack_ns) *
      p.cpu_scale;
  probe.profile.mem_bytes_per_tuple = p.securities_row_bytes;
  probe.profile.selectivity = p.securities_day_selectivity * p.join_fanout;
  probe.profile.in_row_bytes = p.securities_row_bytes;
  probe.profile.out_row_bytes = p.shuffle_row_bytes;
  s2.stages.push_back(probe);
  s2.out_exchange = 1;
  s2.partitioning = Partitioning::kHash;
  s2.consumer_nodes = all;
  spec.segments.push_back(std::move(s2));

  // S3: aggregation (group by sec_code, acct_id) → master.
  SimSegmentSpec s3;
  s3.name = "S3";
  s3.nodes = all;
  SimStageSpec agg;
  agg.input_exchange = 1;
  agg.profile.cpu_ns_per_tuple =
      (c.exchange_merge_ns + c.agg_update_ns) * p.cpu_scale;
  agg.profile.mem_bytes_per_tuple = p.shuffle_row_bytes * 2;
  agg.profile.in_row_bytes = p.shuffle_row_bytes;
  agg.profile.max_state_bytes =
      p.result_groups / p.num_nodes * p.shuffle_row_bytes;
  agg.emits = false;
  s3.stages.push_back(agg);
  SimStageSpec emit;
  emit.source_tuples_per_node = p.result_groups / p.num_nodes;
  emit.profile.cpu_ns_per_tuple = 8;
  emit.profile.in_row_bytes = p.shuffle_row_bytes;
  emit.profile.out_row_bytes = p.shuffle_row_bytes;
  s3.stages.push_back(emit);
  s3.out_exchange = 2;
  s3.partitioning = Partitioning::kToOne;
  s3.consumer_nodes = {0};
  spec.segments.push_back(std::move(s3));

  spec.result_exchange = 2;
  return spec;
}

SimQuerySpec SseQ6Spec(const SseSimParams& p, const SimCostParams& c) {
  // count(*) over (filtered T) ⋈ (hot-security S) on acct_id.
  SimQuerySpec spec;
  const std::vector<int> all = NodeList(p.num_nodes);
  SimSegmentSpec s1;
  s1.name = "S1";
  s1.nodes = all;
  SimStageSpec scan_t;
  scan_t.source_tuples_per_node = p.trades_rows / p.num_nodes;
  scan_t.profile.cpu_ns_per_tuple =
      (c.scan_ns + c.filter_ns + c.exchange_pack_ns) * p.cpu_scale;
  scan_t.profile.mem_bytes_per_tuple = p.trades_row_bytes;
  scan_t.profile.selectivity = p.trades_day_selectivity;
  scan_t.profile.in_row_bytes = p.trades_row_bytes;
  scan_t.profile.out_row_bytes = 8;  // just the join key
  s1.stages.push_back(scan_t);
  s1.out_exchange = 0;
  s1.partitioning = Partitioning::kHash;
  s1.consumer_nodes = all;
  spec.segments.push_back(std::move(s1));

  SimSegmentSpec s2;
  s2.name = "S2";
  s2.nodes = all;
  SimStageSpec build;
  build.input_exchange = 0;
  build.profile.cpu_ns_per_tuple =
      (c.exchange_merge_ns + c.join_build_ns) * p.cpu_scale;
  build.profile.in_row_bytes = 8;
  build.emits = false;
  s2.stages.push_back(build);
  SimStageSpec probe;
  probe.source_tuples_per_node = p.securities_rows / p.num_nodes;
  probe.profile.cpu_ns_per_tuple =
      (c.scan_ns + c.filter_ns + c.join_probe_ns) * p.cpu_scale;
  probe.profile.mem_bytes_per_tuple = p.securities_row_bytes;
  probe.profile.selectivity = 1e-6;  // count rows reduced to one partial
  probe.profile.in_row_bytes = p.securities_row_bytes;
  probe.profile.out_row_bytes = 8;
  s2.stages.push_back(probe);
  s2.out_exchange = 1;
  s2.partitioning = Partitioning::kToOne;
  s2.consumer_nodes = {0};
  spec.segments.push_back(std::move(s2));
  spec.result_exchange = 1;
  return spec;
}

namespace {

SimQuerySpec SseGroupBySpec(const SseSimParams& p, const SimCostParams& c,
                            double filter_selectivity, int64_t groups) {
  SimQuerySpec spec;
  const std::vector<int> all = NodeList(p.num_nodes);
  SimSegmentSpec s1;
  s1.name = "S1";
  s1.nodes = all;
  SimStageSpec scan_t;
  scan_t.source_tuples_per_node = p.trades_rows / p.num_nodes;
  scan_t.profile.cpu_ns_per_tuple =
      (c.scan_ns + c.filter_ns + c.exchange_pack_ns) * p.cpu_scale;
  scan_t.profile.mem_bytes_per_tuple = p.trades_row_bytes;
  scan_t.profile.selectivity = filter_selectivity;
  scan_t.profile.in_row_bytes = p.trades_row_bytes;
  scan_t.profile.out_row_bytes = 16;
  s1.stages.push_back(scan_t);
  s1.out_exchange = 0;
  s1.partitioning = Partitioning::kHash;
  s1.consumer_nodes = all;
  spec.segments.push_back(std::move(s1));

  SimSegmentSpec s2;
  s2.name = "S2";
  s2.nodes = all;
  SimStageSpec agg;
  agg.input_exchange = 0;
  agg.profile.cpu_ns_per_tuple =
      (c.exchange_merge_ns + c.agg_update_ns) * p.cpu_scale;
  agg.profile.mem_bytes_per_tuple = 32;
  agg.profile.in_row_bytes = 16;
  agg.profile.max_state_bytes = groups / p.num_nodes * 16;
  agg.emits = false;
  s2.stages.push_back(agg);
  SimStageSpec emit;
  emit.source_tuples_per_node = groups / p.num_nodes;
  emit.profile.cpu_ns_per_tuple = 8;
  emit.profile.in_row_bytes = 16;
  emit.profile.out_row_bytes = 16;
  s2.stages.push_back(emit);
  s2.out_exchange = 1;
  s2.partitioning = Partitioning::kToOne;
  s2.consumer_nodes = {0};
  spec.segments.push_back(std::move(s2));
  spec.result_exchange = 1;
  return spec;
}

}  // namespace

SimQuerySpec SseQ7Spec(const SseSimParams& p, const SimCostParams& c) {
  return SseGroupBySpec(p, c, 1.0, /*groups=*/3'000'000);
}

SimQuerySpec SseQ8Spec(const SseSimParams& p, const SimCostParams& c) {
  return SseGroupBySpec(p, c, p.trades_day_selectivity / 4,
                        /*groups=*/8'000'000);
}

// --- Fig. 8 micro-benchmarks ---------------------------------------------------

namespace {

SimQuerySpec SingleSegment(SimStageProfile profile, int64_t rows,
                           bool add_build_stage, SimStageProfile build) {
  SimQuerySpec spec;
  SimSegmentSpec seg;
  seg.name = "micro";
  seg.nodes = {0};
  if (add_build_stage) {
    SimStageSpec b;
    b.source_tuples_per_node = rows;
    b.profile = build;
    b.emits = false;
    seg.stages.push_back(std::move(b));
  }
  SimStageSpec main_stage;
  main_stage.source_tuples_per_node = rows;
  main_stage.profile = std::move(profile);
  main_stage.profile.selectivity = 1e-7;  // discard output: measure the op
  seg.stages.push_back(std::move(main_stage));
  seg.out_exchange = 0;
  seg.partitioning = Partitioning::kToOne;
  seg.consumer_nodes = {0};
  spec.segments.push_back(std::move(seg));
  spec.result_exchange = 0;
  return spec;
}

}  // namespace

SimQuerySpec MicroFilterSpec(bool compute_intensive, int64_t rows,
                             const SimCostParams& c) {
  SimStageProfile p;
  if (compute_intensive) {
    // S-Q1: LIKE over o_comment — CPU-bound, scales with every thread.
    p.cpu_ns_per_tuple = c.scan_ns + c.filter_like_ns;
    p.mem_bytes_per_tuple = 60;
  } else {
    // S-Q2: date comparison — memory-bound; ~8 workers saturate the node's
    // bandwidth (Fig. 8a: 12 GB/s / (120 B per 80 ns) ≈ 8).
    p.cpu_ns_per_tuple = 80;
    p.mem_bytes_per_tuple = 120;
  }
  p.in_row_bytes = 120;
  p.out_row_bytes = 120;
  return SingleSegment(std::move(p), rows, false, {});
}

SimQuerySpec MicroAggSpec(bool shared, int64_t groups, int64_t rows,
                          const SimCostParams& c) {
  SimStageProfile p;
  p.cpu_ns_per_tuple = c.scan_ns + c.agg_update_ns;
  p.mem_bytes_per_tuple = 40;
  p.in_row_bytes = 40;
  p.out_row_bytes = 40;
  // Independent aggregation uses private tables — contention-free; shared
  // aggregation contends on the global table's hot entries.
  p.contention_groups = shared ? groups : 0;
  return SingleSegment(std::move(p), rows, false, {});
}

SimQuerySpec MicroJoinSpec(bool build_phase, int64_t rows,
                           const SimCostParams& c) {
  if (build_phase) {
    SimStageProfile p;
    p.cpu_ns_per_tuple = c.scan_ns + c.join_build_ns;
    p.mem_bytes_per_tuple = 48;
    p.in_row_bytes = 24;
    p.out_row_bytes = 24;
    return SingleSegment(std::move(p), rows, false, {});
  }
  SimStageProfile build;
  build.cpu_ns_per_tuple = 0.01;  // pre-built table (measure probe only)
  build.in_row_bytes = 24;
  SimStageProfile probe;
  probe.cpu_ns_per_tuple = c.scan_ns + c.join_probe_ns;
  probe.mem_bytes_per_tuple = 48;
  probe.in_row_bytes = 24;
  probe.out_row_bytes = 48;
  return SingleSegment(std::move(probe), rows, true, build);
}

// --- TPC-H SF-100 profiles -------------------------------------------------------

Result<TpchSimProfile> TpchProfileFor(int number) {
  // Per-node cardinalities at SF 100 on 10 nodes: lineitem 60M, orders 15M,
  // customer 1.5M, part 2M, partsupp 8M, supplier 0.1M.
  // CLAIMS evaluates tuples interpretively (§5.4: codegen would speed filters
  // by up to two orders of magnitude); kCpuScale lifts the per-tuple costs to
  // that regime so compute and the gigabit network are both real bottlenecks,
  // as in the paper's runtimes.
  constexpr double kCpuScale = 6.0;
  TpchSimProfile p;
  p.number = number;
  switch (number) {
    case 1:  // compute-intensive single-table aggregation (8 aggregates)
      p = {1, 60'000'000, 260, 120, 0.98, {}, false, 24, 4, 40};
      break;
    case 2:  // part/supplier lookup with min-cost derived table
      p = {2,       8'000'000, 150, 40, 1.0,
           {{2'000'000, false, 70}, {100'000, true, 50}, {8'000'000, false, 60}},
           true,    32,        100, 35};
      break;
    case 3:
      p = {3,     60'000'000, 130, 120, 0.54,
           {{15'000'000, false, 60}, {1'500'000, true, 50}},
           true,  28,         1'100'000, 30};
      break;
    case 5:
      p = {5,     60'000'000, 170, 120, 1.0,
           {{15'000'000, false, 60},
            {1'500'000, false, 55},
            {100'000, true, 50}},
           true,  28,         25, 30};
      break;
    case 6:  // cheap filter, data-intensive, scalar agg
      p = {6, 60'000'000, 90, 120, 0.019, {}, false, 16, 1, 25};
      break;
    case 7:
      p = {7,     60'000'000, 160, 120, 0.30,
           {{15'000'000, false, 60}, {1'500'000, true, 55}, {100'000, true, 50}},
           true,  28,         4, 30};
      break;
    case 8:
      p = {8,     60'000'000, 180, 120, 1.0,
           {{15'000'000, false, 60},
            {1'500'000, false, 55},
            {2'000'000, true, 55},
            {100'000, true, 50}},
           true,  28,         2, 35};
      break;
    case 9:  // 5-way join, network-heavy (Table 6's network-intensive case)
      p = {9,     60'000'000, 210, 120, 1.0,
           {{15'000'000, false, 60},
            {8'000'000, false, 65},
            {2'000'000, false, 55},
            {100'000, true, 50}},
           true,  36,         175, 35};
      break;
    case 10:
      p = {10,    60'000'000, 150, 120, 0.25,
           {{15'000'000, false, 60}, {1'500'000, false, 55}},
           true,  40,         1'500'000, 35};
      break;
    case 12:
      p = {12,    60'000'000, 120, 120, 0.031,
           {{15'000'000, false, 60}},
           false, 20,         2, 30};
      break;
    case 14:  // mixed: one mid-size join + scalar agg
      p = {14,    60'000'000, 130, 120, 0.0125,
           {{2'000'000, false, 60}},
           false, 20,         1, 30};
      break;
    default:
      return Status::NotFound(
          StrFormat("no simulator profile for TPC-H Q%d", number));
  }
  p.probe_cpu_ns *= kCpuScale;
  p.agg_cpu_ns *= kCpuScale;
  for (auto& b : p.builds) b.cpu_ns *= kCpuScale;
  return p;
}

SimQuerySpec TpchSpec(const TpchSimProfile& profile, int num_nodes,
                      const SimCostParams& c) {
  SimQuerySpec spec;
  const std::vector<int> all = NodeList(num_nodes);
  int next_exchange = 0;

  // Build-side segments (dimension scans shipped to the probe pipeline).
  std::vector<int> build_exchanges;
  for (size_t b = 0; b < profile.builds.size(); ++b) {
    const TpchSimProfile::Build& build = profile.builds[b];
    SimSegmentSpec seg;
    seg.name = StrFormat("B%zu", b);
    seg.nodes = all;
    SimStageSpec scan;
    scan.source_tuples_per_node = build.rows_per_node;
    scan.profile.cpu_ns_per_tuple = c.scan_ns + c.exchange_pack_ns;
    scan.profile.mem_bytes_per_tuple = 80;
    scan.profile.in_row_bytes = 80;
    scan.profile.out_row_bytes = profile.shuffle_row_bytes;
    seg.stages.push_back(scan);
    seg.out_exchange = next_exchange++;
    seg.partitioning =
        build.broadcast ? Partitioning::kBroadcast : Partitioning::kHash;
    seg.consumer_nodes = all;
    build_exchanges.push_back(seg.out_exchange);
    spec.segments.push_back(std::move(seg));
  }

  // Probe pipeline: join builds (stages), then the driving-table scan.
  SimSegmentSpec probe;
  probe.name = "P";
  probe.nodes = all;
  for (size_t b = 0; b < profile.builds.size(); ++b) {
    SimStageSpec stage;
    stage.input_exchange = build_exchanges[b];
    stage.profile.cpu_ns_per_tuple =
        c.exchange_merge_ns + profile.builds[b].cpu_ns;
    stage.profile.mem_bytes_per_tuple = profile.shuffle_row_bytes * 2;
    stage.profile.in_row_bytes = profile.shuffle_row_bytes;
    stage.emits = false;
    probe.stages.push_back(std::move(stage));
  }
  SimStageSpec drive;
  drive.source_tuples_per_node = profile.probe_rows_per_node;
  drive.profile.cpu_ns_per_tuple = profile.probe_cpu_ns;
  drive.profile.mem_bytes_per_tuple = profile.probe_mem_bytes;
  drive.profile.in_row_bytes = static_cast<int>(profile.probe_mem_bytes);
  drive.profile.out_row_bytes = profile.shuffle_row_bytes;
  drive.profile.selectivity =
      profile.agg_shuffle
          ? profile.filter_selectivity
          : std::min(1e-5, profile.filter_selectivity);  // local agg folds
  probe.stages.push_back(std::move(drive));
  int probe_exchange = next_exchange++;
  probe.out_exchange = probe_exchange;
  probe.partitioning =
      profile.agg_shuffle ? Partitioning::kHash : Partitioning::kToOne;
  probe.consumer_nodes = profile.agg_shuffle ? all : std::vector<int>{0};
  spec.segments.push_back(std::move(probe));

  if (profile.agg_shuffle) {
    SimSegmentSpec agg;
    agg.name = "A";
    agg.nodes = all;
    SimStageSpec fold;
    fold.input_exchange = probe_exchange;
    fold.profile.cpu_ns_per_tuple = c.exchange_merge_ns + profile.agg_cpu_ns;
    fold.profile.mem_bytes_per_tuple = profile.shuffle_row_bytes * 2;
    fold.profile.in_row_bytes = profile.shuffle_row_bytes;
    fold.profile.max_state_bytes = std::max<int64_t>(
        1, profile.groups / num_nodes) * profile.shuffle_row_bytes;
    fold.emits = false;
    agg.stages.push_back(fold);
    SimStageSpec emit;
    emit.source_tuples_per_node =
        std::max<int64_t>(1, profile.groups / num_nodes);
    emit.profile.cpu_ns_per_tuple = 8;
    emit.profile.in_row_bytes = profile.shuffle_row_bytes;
    emit.profile.out_row_bytes = profile.shuffle_row_bytes;
    agg.stages.push_back(emit);
    agg.out_exchange = next_exchange++;
    agg.partitioning = Partitioning::kToOne;
    agg.consumer_nodes = {0};
    spec.result_exchange = agg.out_exchange;
    spec.segments.push_back(std::move(agg));
  } else {
    spec.result_exchange = probe_exchange;
  }
  return spec;
}

SimQuerySpec CombineSpecs(const std::vector<SimQuerySpec>& queries) {
  SimQuerySpec combined;
  combined.result_exchange = 0;
  // Renumbered ids start at 1 so no per-query exchange can collide with the
  // shared result collector.
  int base = 1;
  for (size_t q = 0; q < queries.size(); ++q) {
    const SimQuerySpec& query = queries[q];
    int max_exchange = query.result_exchange;
    for (const SimSegmentSpec& seg : query.segments) {
      max_exchange = std::max(max_exchange, seg.out_exchange);
      for (const SimStageSpec& stage : seg.stages) {
        max_exchange = std::max(max_exchange, stage.input_exchange);
      }
    }
    for (SimSegmentSpec seg : query.segments) {
      seg.name += StrFormat("#q%d", static_cast<int>(q));
      seg.out_exchange = seg.out_exchange == query.result_exchange
                             ? combined.result_exchange
                             : seg.out_exchange + base;
      for (SimStageSpec& stage : seg.stages) {
        if (stage.input_exchange >= 0) stage.input_exchange += base;
      }
      combined.segments.push_back(std::move(seg));
    }
    base += max_exchange + 1;
  }
  return combined;
}

}  // namespace claims
