#include "sim/sim_engine.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>
#include <tuple>

#include "common/random.h"
#include "common/string_util.h"
#include "obs/profile/profiler.h"
#include "obs/trace.h"

namespace claims {

const char* SimPolicyName(SimPolicy policy) {
  switch (policy) {
    case SimPolicy::kElastic: return "EP";
    case SimPolicy::kStatic: return "SP";
    case SimPolicy::kMaterialized: return "ME";
    case SimPolicy::kImplicit: return "IS";
    case SimPolicy::kMorsel: return "MDP";
    case SimPolicy::kMorselPlus: return "MDP+";
  }
  return "?";
}

namespace {

constexpr int64_t kBlockBytes = 64 * 1024;

}  // namespace

class SimRun::Impl {
 public:
  Impl(SimQuerySpec spec, SimOptions options)
      : spec_(std::move(spec)), opt_(std::move(options)) {}

  // --- entity declarations ---------------------------------------------------

  struct SimBlock {
    int64_t tuples = 0;
    int row_bytes = 16;
    double visit_tail = 1.0;
    int from_instance = -1;
    int64_t bytes() const { return tuples * row_bytes; }
  };

  struct Worker;
  struct Instance;

  struct Channel {
    int exchange = 0;
    int node = 0;
    std::deque<SimBlock> queue;
    int capacity_blocks = 64;  // <=0: unbounded
    int open_producers = 0;
    int64_t buffered_bytes = 0;
    bool auto_drain = false;  // result collector
    /// Materialized execution: partitions stay resident after consumption
    /// (Shark-style producer-side materialization, paper §2.2).
    bool materialized = false;
    std::vector<Worker*> recv_waiters;
    std::vector<Worker*> send_waiters;
    bool closed() const { return open_producers <= 0; }
    bool full() const {
      return capacity_blocks > 0 &&
             static_cast<int>(queue.size()) >= capacity_blocks;
    }
  };

  struct NodeState {
    int id = 0;
    int busy_workers = 0;
    double mem_demand_bytes_per_ns = 0;
    int64_t busy_last_change = 0;
    double busy_core_integral_ns = 0;  // effective-busy-cores × ns
    // NIC serialization points.
    int64_t egress_free = 0;
    int64_t ingress_free = 0;
    int64_t egress_busy_ns = 0;
    double context_switches = 0;
    int64_t sched_overhead_ns = 0;
    std::unique_ptr<DynamicScheduler> scheduler;  // EP only
    std::vector<Worker*> idle_pool;               // MDP/MDP+ pool workers
    std::vector<double> window_busy_core_ns;
    std::vector<double> window_net_ns;
  };

  /// One segment instance on one node; the scheduler-visible entity.
  struct Instance : SchedulableSegment {
    Impl* impl = nullptr;
    const SimSegmentSpec* spec = nullptr;
    int spec_index = 0;
    int node_id = 0;
    NodeState* node = nullptr;

    int stage = 0;
    int64_t start_vns = -1;  ///< virtual time the instance started (profiler)
    int64_t source_remaining = 0;
    int64_t stage_input_total = 0;
    int64_t stage_input_consumed = 0;
    double out_accum = 0;        // fractional output tuples
    int64_t blocks_emitted = 0;  // round-robin hash destination
    int64_t state_bytes = 0;
    int in_flight = 0;  // busy workers on this instance's current stage
    bool finished_flag = false;
    bool started = false;
    int64_t first_stage_switch_ns = -1;

    std::vector<Worker*> workers;        // bound (non-pool) workers
    std::set<Worker*> parked;            // waiting for stage transition
    /// Static policies: per-worker exclusive share of the local source.
    std::map<Worker*, int64_t> static_share;
    /// Sender-side buffer (models the paper's sender thread + elastic
    /// buffer): workers deposit output blocks here and keep computing; a
    /// virtual sender drains it through the NIC. Workers block only when the
    /// outbox is full — the real engine's backpressure signal.
    std::deque<std::pair<Channel*, SimBlock>> outbox;
    bool outbox_sending = false;
    bool finish_when_drained = false;
    std::vector<Worker*> outbox_waiters;
    SegmentStats seg_stats;
    ScalabilityVector scal{64};
    VisitRateAggregator visits{&seg_stats};

    // --- SchedulableSegment --------------------------------------------------
    const std::string& name() const override { return spec->name; }
    bool active() const override { return started && !finished_flag; }
    int parallelism() const override {
      int live = 0;
      for (Worker* w : workers) {
        if (!w->exited && !w->terminate) ++live;
      }
      return live;
    }
    SegmentStats* stats() override { return &seg_stats; }
    ScalabilityVector* scalability() override { return &scal; }
    bool Expand(int core_id) override { return impl->ExpandInstance(this, core_id); }
    bool Shrink() override { return impl->ShrinkInstance(this); }
  };

  struct Worker {
    int id = 0;
    Instance* instance = nullptr;  // bound instance (null for pool workers)
    NodeState* node = nullptr;
    bool pool = false;
    bool terminate = false;
    bool exited = false;
    Instance* last_unit = nullptr;  // previous unit's segment (locality)
    enum class State { kIdle, kBusy, kWaitInput, kWaitOutput } state =
        State::kIdle;
    int64_t wait_start = 0;
    Instance* working_on = nullptr;  // pool: instance of the in-flight unit
    std::deque<std::pair<Channel*, SimBlock>> to_send;
  };

  // --- top-level --------------------------------------------------------------

  Result<SimMetrics> Run();

  bool ExpandInstance(Instance* inst, int core_id);
  bool ShrinkInstance(Instance* inst);

 private:
  int64_t Now() const { return events_.now(); }

  /// True when the causal profiler should see this run's spans.
  bool Profiled() const {
    return opt_.profile_query_id != 0 && QueryProfiler::Global()->armed();
  }
  /// Segment-instance label matching the real engine's convention.
  std::string SegLabel(const Instance* inst) const {
    return StrFormat("%s@n%d", inst->spec->name.c_str(), inst->node_id);
  }

  Channel* GetChannel(int exchange, int node) {
    auto it = channels_.find({exchange, node});
    return it == channels_.end() ? nullptr : it->second.get();
  }

  // --- memory accounting -------------------------------------------------------
  void MemAdd(int64_t bytes) {
    mem_current_ += bytes;
    mem_peak_ = std::max(mem_peak_, mem_current_);
  }
  void MemSub(int64_t bytes) { mem_current_ -= bytes; }

  // --- node utilization integral -----------------------------------------------
  void TouchNodeBusy(NodeState* node) {
    int64_t now = Now();
    int64_t dt = now - node->busy_last_change;
    if (dt > 0 && node->busy_workers > 0) {
      // Occupancy, not throughput: a hyper-thread-paired or time-shared core
      // still counts as utilized (that is what the paper's CPU utilization
      // rate measures).
      double occupied = std::min(node->busy_workers,
                                 opt_.hardware.logical_cores);
      node->busy_core_integral_ns += occupied * dt;
      AddToWindows(&node->window_busy_core_ns, node->busy_last_change, now,
                   occupied);
    }
    node->busy_last_change = now;
  }

  void AddToWindows(std::vector<double>* windows, int64_t t0, int64_t t1,
                    double weight) {
    const int64_t win = opt_.utilization_window_ns;
    while (t0 < t1) {
      int64_t idx = t0 / win;
      int64_t end = std::min(t1, (idx + 1) * win);
      if (static_cast<int64_t>(windows->size()) <= idx) {
        windows->resize(static_cast<size_t>(idx) + 1, 0);
      }
      (*windows)[static_cast<size_t>(idx)] += weight * (end - t0);
      t0 = end;
    }
  }

  // --- worker lifecycle ---------------------------------------------------------
  void ScheduleTryStart(Worker* w) {
    events_.ScheduleAfter(0, [this, w] { WorkerTryStart(w); });
  }
  void WorkerTryStart(Worker* w);
  void OnBlockDone(Worker* w, Instance* inst, int64_t take, int stage_index);
  void TrySendAll(Worker* w);
  void PumpOutbox(Instance* inst);
  void ReleaseOutboxWaiter(Instance* inst);
  void CompleteFinish(Instance* inst);
  void WorkerExit(Worker* w);
  void ParkForStageEnd(Worker* w, Instance* inst);
  void MaybeAdvanceStage(Instance* inst);
  void AdvanceStage(Instance* inst);
  void FinishInstance(Instance* inst);
  void EmitTuples(Instance* inst, Worker* w, double tuples, bool flush);
  void PushBlock(Channel* ch, SimBlock block);
  void PopWake(Channel* ch);
  void WakeIdlePool(NodeState* node);

  Instance* PickPoolUnit(Worker* w);
  bool InstanceHasInput(Instance* inst);
  /// Stats sink for a worker: bound instance, or the pool unit in flight.
  static Instance* StatsTarget(Worker* w) {
    return w->instance != nullptr ? w->instance : w->working_on;
  }
  /// Splits a local-source stage's tuples into skewed exclusive per-worker
  /// partitions (static pipelines, paper Fig. 2a).
  void AssignStaticShares(Instance* inst);

  double WorkerSpeed(NodeState* node, const SimStageProfile& profile,
                     bool* time_shared);
  int64_t BlockDurationNs(Instance* inst, const SimStageProfile& profile,
                          int64_t tuples, NodeState* node);

  // --- fault rendering (capacity faults only; see SimOptions::fault_plan) ----
  void ScheduleFaults();
  void ApplySimFault(const FaultSpec& spec, bool activate);
  int64_t EffectiveNicRate(int node) const;

  // --- EP scheduling -------------------------------------------------------------
  void ScheduleTick();
  void FlushWaitTimes();

  SimQuerySpec spec_;
  SimOptions opt_;
  EventQueue events_;
  Rng rng_{7};

  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::vector<std::unique_ptr<Instance>> instances_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<std::pair<int, int>, std::unique_ptr<Channel>> channels_;
  GlobalThroughputBoard board_;

  /// Per-node multiplier from active kStraggleNode windows (1 = healthy).
  std::vector<double> node_speed_factor_;
  /// Per-node kDegradeNic override; <= 0 = the configured hardware rate.
  std::vector<int64_t> node_nic_override_;
  std::vector<FaultEvent> fault_events_;

  int64_t mem_current_ = 0;
  int64_t mem_peak_ = 0;
  int64_t network_bytes_ = 0;
  /// Next 1-based span wire_seq per (exchange, from, to) — the simulator's
  /// analogue of BlockChannel's per-producer sequencing (single-threaded
  /// event loop, so a plain map suffices).
  std::map<std::tuple<int, int, int>, uint64_t> wire_seq_;
  int finished_instances_ = 0;
  bool done_ = false;
  int64_t done_at_ = 0;

  std::vector<SimTracePoint> trace_;
  int next_worker_id_ = 0;
};

namespace {

bool IsStaticPolicy(SimPolicy policy) {
  return policy == SimPolicy::kStatic || policy == SimPolicy::kMaterialized ||
         policy == SimPolicy::kImplicit;
}

}  // namespace

// --- speed / duration ---------------------------------------------------------------

double SimRun::Impl::WorkerSpeed(NodeState* node,
                                 const SimStageProfile& profile,
                                 bool* time_shared) {
  const SimHardware& hw = opt_.hardware;
  int active = std::max(1, node->busy_workers);
  double capacity =
      hw.EffectiveCapacity(std::min(active, hw.logical_cores));
  double speed = capacity / active;
  *time_shared = active > hw.logical_cores;
  if (*time_shared) {
    // OS time-slicing: direct switch cost plus cold-cache refills.
    double overhead = static_cast<double>(hw.context_switch_ns) /
                      static_cast<double>(hw.os_quantum_ns);
    speed *= (1.0 - overhead) / (1.0 + hw.switch_cache_penalty);
  }
  if (opt_.node_capacity_at) {
    speed *= std::max(0.01, opt_.node_capacity_at(Now()));
  }
  if (!node_speed_factor_.empty()) {
    speed *= node_speed_factor_[static_cast<size_t>(node->id)];
  }
  // Aggregate memory-bandwidth throttle.
  if (profile.mem_bytes_per_tuple > 0 && profile.cpu_ns_per_tuple > 0) {
    double demand = node->mem_demand_bytes_per_ns;
    double bw = hw.mem_bandwidth_bytes_per_sec / 1e9;  // bytes per ns
    if (demand > bw) speed *= bw / demand;
  }
  return std::max(speed, 1e-6);
}

int64_t SimRun::Impl::BlockDurationNs(Instance* inst,
                                      const SimStageProfile& profile,
                                      int64_t tuples, NodeState* node) {
  double per_tuple =
      profile.cpu_ns_per_tuple +
      SharedUpdatePenaltyNs(opt_.costs, inst->parallelism(),
                            profile.contention_groups);
  bool time_shared = false;
  double speed = WorkerSpeed(node, profile, &time_shared);
  double duration = static_cast<double>(tuples) * per_tuple / speed;
  if (time_shared) {
    // Context switches incurred while this unit runs.
    node->context_switches +=
        duration / static_cast<double>(opt_.hardware.os_quantum_ns);
  }
  return std::max<int64_t>(1, static_cast<int64_t>(duration));
}

// --- fault rendering -----------------------------------------------------------------

int64_t SimRun::Impl::EffectiveNicRate(int node) const {
  const int64_t configured = opt_.hardware.nic_bytes_per_sec;
  if (node_nic_override_.empty()) return configured;
  const int64_t override_bps = node_nic_override_[static_cast<size_t>(node)];
  if (override_bps <= 0) return configured;
  return std::min(override_bps, configured);
}

void SimRun::Impl::ScheduleFaults() {
  node_speed_factor_.assign(static_cast<size_t>(opt_.num_nodes), 1.0);
  node_nic_override_.assign(static_cast<size_t>(opt_.num_nodes), 0);
  for (const FaultSpec& fault : opt_.fault_plan.faults) {
    if (fault.kind != FaultKind::kStraggleNode &&
        fault.kind != FaultKind::kDegradeNic) {
      continue;  // loss faults and crashes are real-engine-only
    }
    FaultSpec spec = fault;
    events_.Schedule(spec.at_ns, [this, spec] { ApplySimFault(spec, true); });
    if (spec.duration_ns > 0) {
      events_.Schedule(spec.at_ns + spec.duration_ns,
                       [this, spec] { ApplySimFault(spec, false); });
    }
  }
}

void SimRun::Impl::ApplySimFault(const FaultSpec& spec, bool activate) {
  FaultEvent event;
  event.at_ns = activate ? spec.at_ns : spec.at_ns + spec.duration_ns;
  event.activated = activate;
  event.description = spec.ToString();
  fault_events_.push_back(std::move(event));
  const int first = spec.node < 0 ? 0 : spec.node;
  const int last = spec.node < 0 ? opt_.num_nodes - 1 : spec.node;
  for (int n = first; n <= last && n < opt_.num_nodes; ++n) {
    if (spec.kind == FaultKind::kStraggleNode) {
      node_speed_factor_[static_cast<size_t>(n)] =
          activate ? 1.0 / std::max(1.0, spec.slowdown_factor) : 1.0;
    } else {
      node_nic_override_[static_cast<size_t>(n)] =
          activate ? spec.bandwidth_bytes_per_sec : 0;
    }
  }
}

// --- worker main ---------------------------------------------------------------------

bool SimRun::Impl::InstanceHasInput(Instance* inst) {
  if (!inst->started || inst->finished_flag) return false;
  const SimStageSpec& stage = inst->spec->stages[inst->stage];
  if (stage.input_exchange < 0) return inst->source_remaining > 0;
  Channel* ch = GetChannel(stage.input_exchange, inst->node_id);
  return ch != nullptr && !ch->queue.empty();
}

SimRun::Impl::Instance* SimRun::Impl::PickPoolUnit(Worker* w) {
  // Plain MDP picks blindly and its workers block behind saturated exchanges
  // ("a thread blocked by the network cannot switch units", §5.3) — only the
  // last free worker on a node refuses such units, which keeps utilization
  // low without a full deadlock. MDP+ (this paper's strategy) always avoids
  // units whose sender buffer is full.
  int blocked_here = 0;
  for (auto& inst : instances_) {
    if (inst->node_id == w->node->id) {
      blocked_here += static_cast<int>(inst->outbox_waiters.size());
    }
  }
  int pool_here = 0;
  for (auto& other : workers_) {
    if (other->pool && !other->exited && other->node == w->node) ++pool_here;
  }
  const bool must_avoid_full = opt_.policy == SimPolicy::kMorselPlus ||
                               blocked_here >= pool_here - 1;
  std::vector<Instance*> candidates;
  for (auto& inst : instances_) {
    if (inst->node_id == w->node->id && InstanceHasInput(inst.get()) &&
        (!must_avoid_full ||
         static_cast<int>(inst->outbox.size()) <
             opt_.channel_capacity_blocks)) {
      candidates.push_back(inst.get());
    }
  }
  if (candidates.empty()) return nullptr;
  if (opt_.policy == SimPolicy::kMorsel) {
    return candidates[rng_.Uniform(candidates.size())];
  }
  // MDP+: this paper's strategy — feed the bottleneck. The segment with the
  // largest input backlog is throttling the pipeline; draining it first also
  // keeps producers from wedging on full downstream channels.
  Instance* best = nullptr;
  double best_score = -1;
  for (Instance* inst : candidates) {
    const SimStageSpec& stage = inst->spec->stages[inst->stage];
    double score;
    if (stage.input_exchange >= 0) {
      Channel* ch = GetChannel(stage.input_exchange, inst->node_id);
      score = 1.0 + static_cast<double>(ch->queue.size());
    } else {
      score = 0.5;  // local source: never starves, lowest urgency
    }
    if (score > best_score) {
      best = inst;
      best_score = score;
    }
  }
  return best;
}

void SimRun::Impl::AssignStaticShares(Instance* inst) {
  inst->static_share.clear();
  if (!IsStaticPolicy(opt_.policy)) return;
  const SimStageSpec& stage = inst->spec->stages[inst->stage];
  if (stage.input_exchange >= 0 || inst->source_remaining <= 0) return;
  std::vector<Worker*> live;
  for (Worker* w : inst->workers) {
    if (!w->exited) live.push_back(w);
  }
  if (live.empty()) return;
  // Deterministic skewed weights around 1 with the configured CV.
  std::vector<double> weights;
  double total = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    double u = rng_.NextDouble();
    double wgt = std::max(0.05, 1.0 + opt_.partition_skew_cv * (2 * u - 1));
    weights.push_back(wgt);
    total += wgt;
  }
  int64_t assigned = 0;
  for (size_t i = 0; i < live.size(); ++i) {
    int64_t share =
        i + 1 == live.size()
            ? inst->source_remaining - assigned
            : static_cast<int64_t>(inst->source_remaining * weights[i] / total);
    inst->static_share[live[i]] = share;
    assigned += share;
  }
}

void SimRun::Impl::WorkerTryStart(Worker* w) {
  if (w->exited) return;
  if (!w->to_send.empty()) {  // resume a blocked send first
    TrySendAll(w);
    return;
  }
  Instance* inst = w->instance;
  if (w->pool) {
    inst = PickPoolUnit(w);
    if (inst == nullptr) {
      if (done_) {
        WorkerExit(w);
        return;
      }
      w->state = Worker::State::kIdle;
      w->node->idle_pool.push_back(w);
      return;
    }
    w->working_on = inst;
  } else {
    if (w->terminate || inst == nullptr || inst->finished_flag) {
      WorkerExit(w);
      return;
    }
  }

  const SimStageSpec& stage = inst->spec->stages[inst->stage];
  // Block size in tuples (MDP uses the configured unit size).
  int64_t unit_bytes =
      (opt_.policy == SimPolicy::kMorsel ||
       opt_.policy == SimPolicy::kMorselPlus)
          ? opt_.unit_bytes
          : kBlockBytes;
  int64_t block_tuples =
      std::max<int64_t>(1, unit_bytes / std::max(1, stage.profile.in_row_bytes));

  int64_t take = 0;
  double visit_tail = 1.0;
  if (stage.input_exchange < 0) {
    if (inst->source_remaining <= 0) {
      ParkForStageEnd(w, inst);
      return;
    }
    if (!inst->static_share.empty()) {
      // Exclusive pre-partitioned dataflow: the worker only consumes its own
      // (skewed) share; early finishers idle while the slowest drags on.
      auto it = inst->static_share.find(w);
      int64_t own = it == inst->static_share.end() ? 0 : it->second;
      if (own <= 0) {
        ParkForStageEnd(w, inst);
        return;
      }
      take = std::min(block_tuples, own);
      it->second -= take;
    } else {
      take = std::min(block_tuples, inst->source_remaining);
    }
    inst->source_remaining -= take;
  } else {
    Channel* ch = GetChannel(stage.input_exchange, inst->node_id);
    if (ch == nullptr || (ch->queue.empty() && ch->closed())) {
      ParkForStageEnd(w, inst);
      return;
    }
    if (ch->queue.empty()) {
      if (w->pool) {
        // Pool workers re-pick instead of camping on one channel.
        w->working_on = nullptr;
        w->state = Worker::State::kIdle;
        w->node->idle_pool.push_back(w);
        return;
      }
      w->state = Worker::State::kWaitInput;
      w->wait_start = Now();
      ch->recv_waiters.push_back(w);
      return;
    }
    SimBlock block = ch->queue.front();
    ch->queue.pop_front();
    ch->buffered_bytes -= block.bytes();
    if (!ch->materialized) MemSub(block.bytes());
    take = block.tuples;
    visit_tail = block.visit_tail;
    inst->visits.Observe(block.from_instance, block.visit_tail);
    PopWake(ch);
  }
  (void)visit_tail;

  // Start processing.
  TouchNodeBusy(w->node);
  ++w->node->busy_workers;
  w->node->mem_demand_bytes_per_ns +=
      stage.profile.cpu_ns_per_tuple > 0
          ? stage.profile.mem_bytes_per_tuple / stage.profile.cpu_ns_per_tuple
          : 0;
  w->state = Worker::State::kBusy;
  ++inst->in_flight;
  int64_t duration = BlockDurationNs(inst, stage.profile, take, w->node);
  if (w->pool) {
    // Unit-pickup decision cost (Table 5's scheduling overhead).
    double pickup = opt_.policy == SimPolicy::kMorsel
                        ? opt_.costs.mdp_pickup_ns
                        : opt_.costs.mdp_plus_pickup_ns;
    duration += static_cast<int64_t>(pickup);
    w->node->sched_overhead_ns += static_cast<int64_t>(pickup);
  }
  if (w->pool) {
    // Unit-hopping across segments costs cache refills; EP workers stay put.
    if (w->last_unit != nullptr && w->last_unit != inst) {
      duration = static_cast<int64_t>(
          duration * (1.0 + opt_.costs.pool_switch_penalty));
    }
    w->last_unit = inst;
  }
  int stage_index = inst->stage;
  events_.ScheduleAfter(duration, [this, w, inst, take, stage_index] {
    OnBlockDone(w, inst, take, stage_index);
  });
}

void SimRun::Impl::OnBlockDone(Worker* w, Instance* inst, int64_t take,
                               int stage_index) {
  TouchNodeBusy(w->node);
  --w->node->busy_workers;
  const SimStageSpec& stage = inst->spec->stages[stage_index];
  w->node->mem_demand_bytes_per_ns -=
      stage.profile.cpu_ns_per_tuple > 0
          ? stage.profile.mem_bytes_per_tuple / stage.profile.cpu_ns_per_tuple
          : 0;
  --inst->in_flight;
  w->state = Worker::State::kIdle;

  inst->stage_input_consumed += take;
  inst->seg_stats.input_tuples.fetch_add(take, std::memory_order_relaxed);
  double progress =
      inst->stage_input_total > 0
          ? static_cast<double>(inst->stage_input_consumed) /
                static_cast<double>(inst->stage_input_total)
          : 1.0;
  double sel = stage.profile.selectivity_at
                   ? stage.profile.selectivity_at(progress)
                   : stage.profile.selectivity;
  double out = static_cast<double>(take) * sel;

  if (stage.emits) {
    inst->seg_stats.output_tuples.fetch_add(
        static_cast<int64_t>(out), std::memory_order_relaxed);
    EmitTuples(inst, w, out, /*flush=*/false);
    if (!w->to_send.empty()) {
      TrySendAll(w);
      return;
    }
  } else {
    // Build stage: fold into shared iterator state. Aggregation states stop
    // growing once all groups exist (max_state_bytes cap).
    int64_t grow = static_cast<int64_t>(out) * stage.profile.in_row_bytes;
    if (stage.profile.max_state_bytes > 0) {
      grow = std::min(grow,
                      std::max<int64_t>(0, stage.profile.max_state_bytes -
                                               inst->state_bytes));
    }
    inst->state_bytes += grow;
    MemAdd(grow);
  }
  // Pool workers drift to other instances after a unit; make sure a drained
  // stage still advances even if nobody re-visits this instance.
  MaybeAdvanceStage(inst);
  ScheduleTryStart(w);
}

void SimRun::Impl::EmitTuples(Instance* inst, Worker* w, double tuples,
                              bool flush) {
  const SimStageSpec& stage = inst->spec->stages[inst->stage];
  inst->out_accum += tuples;
  int64_t out_block =
      std::max<int64_t>(1, kBlockBytes / std::max(1, stage.profile.out_row_bytes));
  const auto& consumers = inst->spec->consumer_nodes;
  int ncons = std::max<size_t>(1, consumers.size());
  while (inst->out_accum >= static_cast<double>(out_block) ||
         (flush && inst->out_accum >= 1.0)) {
    int64_t emit = std::min<int64_t>(
        out_block, static_cast<int64_t>(inst->out_accum));
    inst->out_accum -= static_cast<double>(emit);
    double v = inst->seg_stats.visit_rate.load(std::memory_order_relaxed);
    double delta = inst->seg_stats.selectivity();
    SimBlock block;
    block.tuples = emit;
    block.row_bytes = stage.profile.out_row_bytes;
    block.from_instance =
        inst->spec_index * 1000 + inst->node_id;  // unique producer id
    switch (inst->spec->partitioning) {
      case Partitioning::kToOne: {
        block.visit_tail = v * delta;
        Channel* ch = GetChannel(inst->spec->out_exchange, consumers[0]);
        w->to_send.emplace_back(ch, block);
        break;
      }
      case Partitioning::kBroadcast: {
        block.visit_tail = v * delta;
        for (int c : consumers) {
          w->to_send.emplace_back(GetChannel(inst->spec->out_exchange, c),
                                  block);
        }
        break;
      }
      case Partitioning::kHash: {
        // Round-robin block routing models a uniform hash split.
        block.visit_tail = v * delta / ncons;
        int dest = static_cast<int>(inst->blocks_emitted %
                                    static_cast<int64_t>(ncons));
        ++inst->blocks_emitted;
        w->to_send.emplace_back(
            GetChannel(inst->spec->out_exchange,
                       consumers[static_cast<size_t>(dest)]),
            block);
        break;
      }
    }
  }
}

void SimRun::Impl::TrySendAll(Worker* w) {
  Instance* inst = StatsTarget(w);
  while (!w->to_send.empty()) {
    auto& [ch, block] = w->to_send.front();
    if (ch == nullptr) {
      w->to_send.pop_front();
      continue;
    }
    if (inst == nullptr) {  // no owning instance: direct push (flush paths)
      PushBlock(ch, block);
      w->to_send.pop_front();
      continue;
    }
    if (static_cast<int>(inst->outbox.size()) >=
        opt_.channel_capacity_blocks) {
      bool must_overflow = false;
      if (w->pool) {
        // Liveness guard: the last unblocked pool worker on a node may
        // overshoot the sender buffer instead of blocking, or every node
        // could wedge behind not-yet-consumable exchanges (all-blocked MDP
        // deadlock). Utilization still collapses — the paper's observation —
        // but progress is guaranteed.
        int blocked_here = 0;
        for (auto& other : instances_) {
          if (other->node_id == w->node->id) {
            blocked_here += static_cast<int>(other->outbox_waiters.size());
          }
        }
        int pool_here = 0;
        for (auto& other : workers_) {
          if (other->pool && !other->exited && other->node == w->node) {
            ++pool_here;
          }
        }
        must_overflow = blocked_here >= pool_here - 1;
      }
      if (!must_overflow) {
        // Sender buffer full: genuine backpressure onto the worker.
        if (w->state != Worker::State::kWaitOutput) {
          w->state = Worker::State::kWaitOutput;
          w->wait_start = Now();
        }
        inst->outbox_waiters.push_back(w);
        PumpOutbox(inst);
        return;
      }
    }
    MemAdd(block.bytes());
    inst->outbox.emplace_back(ch, block);
    w->to_send.pop_front();
  }
  if (inst != nullptr) PumpOutbox(inst);
  // Plain MDP binds the thread to its unit through the network send (§5.3:
  // "a thread blocked by the network cannot switch to another unit"), so the
  // worker stays blocked until the sender buffer drains. MDP+ and the other
  // policies hand the blocks to the sender and move on.
  if (opt_.policy == SimPolicy::kMorsel && w->pool && inst != nullptr &&
      (!inst->outbox.empty() || inst->outbox_sending)) {
    int blocked_here = 0;
    for (auto& other : instances_) {
      if (other->node_id == w->node->id) {
        blocked_here += static_cast<int>(other->outbox_waiters.size());
      }
    }
    int pool_here = 0;
    for (auto& other : workers_) {
      if (other->pool && !other->exited && other->node == w->node) {
        ++pool_here;
      }
    }
    if (blocked_here < pool_here - 1) {  // liveness: keep one worker free
      if (w->state != Worker::State::kWaitOutput) {
        w->state = Worker::State::kWaitOutput;
        w->wait_start = Now();
      }
      inst->outbox_waiters.push_back(w);
      return;
    }
  }
  if (w->state == Worker::State::kWaitOutput) {
    if (Instance* sink = StatsTarget(w)) {
      sink->seg_stats.blocked_output_ns.fetch_add(
          Now() - w->wait_start, std::memory_order_relaxed);
    }
    w->state = Worker::State::kIdle;
  }
  ScheduleTryStart(w);
}

void SimRun::Impl::ReleaseOutboxWaiter(Instance* inst) {
  WakeIdlePool(inst->node);
  if (inst->outbox_waiters.empty()) return;
  Worker* w = inst->outbox_waiters.back();
  inst->outbox_waiters.pop_back();
  events_.ScheduleAfter(0, [this, w] { TrySendAll(w); });
}

void SimRun::Impl::PumpOutbox(Instance* inst) {
  if (inst->outbox_sending) return;
  if (inst->outbox.empty()) {
    if (inst->finish_when_drained) {
      inst->finish_when_drained = false;
      CompleteFinish(inst);
    }
    return;
  }
  // Per-destination independence (the real sender keeps one pending block
  // per destination): skip past blocked consumers instead of head-of-line
  // blocking the whole outbox.
  auto it = inst->outbox.begin();
  while (it != inst->outbox.end() && it->first->full()) ++it;
  if (it == inst->outbox.end()) {
    // Every destination backed up: retry shortly (backpressure propagates to
    // the workers once the outbox fills too).
    inst->outbox_sending = true;
    events_.ScheduleAfter(500'000, [this, inst] {
      inst->outbox_sending = false;
      PumpOutbox(inst);
    });
    return;
  }
  auto [ch, block] = *it;
  inst->outbox.erase(it);
  NodeState* from = inst->node;
  if (ch->node != from->id && opt_.hardware.nic_bytes_per_sec > 0) {
    int64_t bytes = block.bytes();
    int64_t depart = std::max(Now(), from->egress_free);
    // A degraded NIC on either endpoint bounds the transfer (the slower of
    // the sender's egress and the receiver's ingress budgets).
    int64_t rate = std::min(EffectiveNicRate(from->id),
                            EffectiveNicRate(ch->node));
    int64_t dt = static_cast<int64_t>(
        static_cast<double>(bytes) / static_cast<double>(rate) * 1e9);
    from->egress_free = depart + dt;
    from->egress_busy_ns += dt;
    AddToWindows(&from->window_net_ns, depart, depart + dt, 1.0);
    NodeState* to = nodes_[static_cast<size_t>(ch->node)].get();
    int64_t arrive = std::max(from->egress_free, to->ingress_free);
    to->ingress_free = arrive + dt;
    network_bytes_ += bytes;
    TraceCollector* tc = TraceCollector::Global();
    if (tc->enabled()) {
      tc->Instant(depart, 1000 + from->id, "net", "xfer",
                  {{"exchange", static_cast<int64_t>(ch->exchange)},
                   {"to", static_cast<int64_t>(ch->node)},
                   {"bytes", bytes},
                   {"link_ns", dt}});
    }
    uint64_t seq = 0;
    if (Profiled()) {
      // Same 1-based link key the real fabric's spans use, so the assembler
      // stitches virtual-time profiles identically.
      seq = ++wire_seq_[{ch->exchange, from->id, ch->node}];
      ProfSpan span;
      span.query_id = opt_.profile_query_id;
      span.kind = SpanKind::kNetSend;
      span.name = "send";
      span.segment = SegLabel(inst);
      span.node = from->id;
      span.start_ns = depart;
      span.end_ns = depart + dt;
      span.tuples = block.tuples;
      span.bytes = bytes;
      span.exchange_id = ch->exchange;
      span.from_node = from->id;
      span.to_node = ch->node;
      span.wire_seq = seq;
      QueryProfiler::Global()->EmitComplete(std::move(span));
    }
    inst->outbox_sending = true;
    MemSub(block.bytes());
    Channel* target = ch;
    SimBlock b = block;
    const int from_id = from->id;
    events_.Schedule(depart + dt, [this, inst, target, b, seq, from_id] {
      if (seq != 0 && Profiled()) {
        ProfSpan span;
        span.query_id = opt_.profile_query_id;
        span.kind = SpanKind::kNetRecv;
        span.name = "recv";
        span.node = target->node;
        span.start_ns = Now();
        span.end_ns = Now();
        span.tuples = b.tuples;
        span.bytes = b.bytes();
        span.exchange_id = target->exchange;
        span.from_node = from_id;
        span.to_node = target->node;
        span.wire_seq = seq;
        QueryProfiler::Global()->EmitComplete(std::move(span));
      }
      PushBlock(target, b);
      inst->outbox_sending = false;
      ReleaseOutboxWaiter(inst);
      WakeIdlePool(inst->node);
      PumpOutbox(inst);
    });
    return;
  }
  // Local delivery is instant.
  MemSub(block.bytes());
  PushBlock(ch, block);
  ReleaseOutboxWaiter(inst);
  WakeIdlePool(inst->node);
  PumpOutbox(inst);
}

void SimRun::Impl::PushBlock(Channel* ch, SimBlock block) {
  if (ch->auto_drain) return;  // collector consumes instantly
  ch->queue.push_back(block);
  ch->buffered_bytes += block.bytes();
  MemAdd(block.bytes());
  // Wake one receiver.
  if (!ch->recv_waiters.empty()) {
    Worker* w = ch->recv_waiters.back();
    ch->recv_waiters.pop_back();
    if (Instance* sink = StatsTarget(w)) {
      sink->seg_stats.blocked_input_ns.fetch_add(
          Now() - w->wait_start, std::memory_order_relaxed);
    }
    w->state = Worker::State::kIdle;
    ScheduleTryStart(w);
  }
  WakeIdlePool(nodes_[static_cast<size_t>(ch->node)].get());
}

void SimRun::Impl::PopWake(Channel* ch) {
  if (!ch->send_waiters.empty()) {
    Worker* w = ch->send_waiters.back();
    ch->send_waiters.pop_back();
    if (w->state == Worker::State::kWaitOutput) {
      if (Instance* sink = StatsTarget(w)) {
        sink->seg_stats.blocked_output_ns.fetch_add(
            Now() - w->wait_start, std::memory_order_relaxed);
      }
      w->wait_start = Now();
    }
    events_.ScheduleAfter(0, [this, w] { TrySendAll(w); });
  }
}

void SimRun::Impl::WakeIdlePool(NodeState* node) {
  if (node->idle_pool.empty()) return;
  std::vector<Worker*> idle = std::move(node->idle_pool);
  node->idle_pool.clear();
  for (Worker* w : idle) ScheduleTryStart(w);
}

void SimRun::Impl::ParkForStageEnd(Worker* w, Instance* inst) {
  if (w->pool) {
    w->working_on = nullptr;
    MaybeAdvanceStage(inst);
    // Try other instances immediately.
    w->state = Worker::State::kIdle;
    ScheduleTryStart(w);
    return;
  }
  if (w->terminate) {
    WorkerExit(w);
    MaybeAdvanceStage(inst);
    return;
  }
  inst->parked.insert(w);
  w->state = Worker::State::kIdle;
  MaybeAdvanceStage(inst);
}

void SimRun::Impl::MaybeAdvanceStage(Instance* inst) {
  if (inst->finished_flag || inst->finish_when_drained || !inst->started) {
    return;
  }
  // Every live bound worker parked, nothing in flight, input exhausted.
  if (inst->in_flight > 0) return;
  const SimStageSpec& stage = inst->spec->stages[inst->stage];
  if (stage.input_exchange < 0) {
    if (inst->source_remaining > 0) return;
  } else {
    Channel* ch = GetChannel(stage.input_exchange, inst->node_id);
    if (ch == nullptr || !ch->closed() || !ch->queue.empty()) return;
  }
  int live = 0;
  for (Worker* w : inst->workers) {
    if (!w->exited) ++live;
  }
  if (static_cast<int>(inst->parked.size()) < live) return;
  AdvanceStage(inst);
}

void SimRun::Impl::AdvanceStage(Instance* inst) {
  const SimStageSpec& stage = inst->spec->stages[inst->stage];
  // Flush the partial output block through a scratch worker so no live
  // worker's pending (capacity-gated) sends are disturbed. Flush pushes may
  // overshoot channel capacity by one block — harmless.
  if (stage.emits && inst->out_accum >= 1.0) {
    Worker scratch;
    scratch.node = inst->node;
    EmitTuples(inst, &scratch, 0, /*flush=*/true);
    for (auto& [ch, block] : scratch.to_send) {
      if (ch == nullptr) continue;
      MemAdd(block.bytes());
      inst->outbox.emplace_back(ch, block);  // may overshoot capacity by one
    }
    PumpOutbox(inst);
  }

  if (inst->stage + 1 >= static_cast<int>(inst->spec->stages.size())) {
    FinishInstance(inst);
    return;
  }
  ++inst->stage;
  if (inst->first_stage_switch_ns < 0) inst->first_stage_switch_ns = Now();
  TraceCollector* tc = TraceCollector::Global();
  if (tc->enabled()) {
    tc->Instant(Now(), 1000 + inst->node_id, "segment", "stage",
                {{"segment", inst->spec->name},
                 {"stage", static_cast<int64_t>(inst->stage)}});
  }
  // New stage, new scalability profile (paper §4.4).
  inst->scal.Invalidate();
  const SimStageSpec& next = inst->spec->stages[inst->stage];
  inst->source_remaining =
      next.input_exchange < 0 ? next.source_tuples_per_node : 0;
  inst->stage_input_total =
      next.input_exchange < 0 ? next.source_tuples_per_node : 0;
  inst->stage_input_consumed = 0;
  AssignStaticShares(inst);
  std::set<Worker*> parked = std::move(inst->parked);
  inst->parked.clear();
  for (Worker* w : parked) ScheduleTryStart(w);
  WakeIdlePool(inst->node);
}

void SimRun::Impl::FinishInstance(Instance* inst) {
  if (!inst->outbox.empty() || inst->outbox_sending) {
    // Let the sender drain the remaining buffered blocks first.
    inst->finish_when_drained = true;
    return;
  }
  CompleteFinish(inst);
}

void SimRun::Impl::CompleteFinish(Instance* inst) {
  inst->finished_flag = true;
  TraceCollector* tc = TraceCollector::Global();
  if (tc->enabled()) {
    tc->Instant(Now(), 1000 + inst->node_id, "segment", "segment-finish",
                {{"segment", inst->spec->name}});
  }
  if (Profiled()) {
    ProfSpan span;
    span.query_id = opt_.profile_query_id;
    span.kind = SpanKind::kSegment;
    span.name = SegLabel(inst);
    span.segment = SegLabel(inst);
    span.node = inst->node_id;
    span.start_ns = inst->start_vns >= 0 ? inst->start_vns : 0;
    span.end_ns = Now();
    span.tuples =
        inst->seg_stats.output_tuples.load(std::memory_order_relaxed);
    QueryProfiler::Global()->EmitComplete(std::move(span));
  }
  // Release the iterator state.
  MemSub(inst->state_bytes);
  inst->state_bytes = 0;
  // Close this producer on every consumer channel.
  for (int c : inst->spec->consumer_nodes) {
    Channel* ch = GetChannel(inst->spec->out_exchange, c);
    if (ch == nullptr) continue;
    --ch->open_producers;
    if (ch->closed()) {
      // Wake receivers so they can observe end-of-stream.
      std::vector<Worker*> waiters = std::move(ch->recv_waiters);
      ch->recv_waiters.clear();
      for (Worker* w : waiters) {
        if (Instance* sink = StatsTarget(w)) {
          sink->seg_stats.blocked_input_ns.fetch_add(
              Now() - w->wait_start, std::memory_order_relaxed);
        }
        w->state = Worker::State::kIdle;
        ScheduleTryStart(w);
      }
      WakeIdlePool(nodes_[static_cast<size_t>(ch->node)].get());
    }
  }
  // Bound workers exit.
  std::set<Worker*> parked = std::move(inst->parked);
  inst->parked.clear();
  for (Worker* w : parked) WorkerExit(w);
  for (Worker* w : inst->workers) {
    if (!w->exited) w->terminate = true;
  }
  ++finished_instances_;
  if (finished_instances_ == static_cast<int>(instances_.size())) {
    done_ = true;
    done_at_ = Now();
    if (Profiled()) {
      ProfSpan span;
      span.query_id = opt_.profile_query_id;
      span.kind = SpanKind::kQuery;
      span.name = StrFormat("sim (%s)", SimPolicyName(opt_.policy));
      span.node = 0;
      span.start_ns = 0;
      span.end_ns = done_at_;
      span.bytes = network_bytes_;
      QueryProfiler::Global()->EmitComplete(std::move(span));
    }
    for (auto& node : nodes_) WakeIdlePool(node.get());
  }
}

void SimRun::Impl::WorkerExit(Worker* w) {
  if (w->exited) return;
  w->exited = true;
  if (w->instance != nullptr) {
    w->instance->parked.erase(w);
  }
}

bool SimRun::Impl::ExpandInstance(Instance* inst, int /*core_id*/) {
  if (!inst->active()) return false;
  auto worker = std::make_unique<Worker>();
  worker->id = next_worker_id_++;
  worker->instance = inst;
  worker->node = inst->node;
  Worker* w = worker.get();
  inst->workers.push_back(w);
  workers_.push_back(std::move(worker));
  ScheduleTryStart(w);
  return true;
}

bool SimRun::Impl::ShrinkInstance(Instance* inst) {
  Worker* victim = nullptr;
  int live = 0;
  for (auto it = inst->workers.rbegin(); it != inst->workers.rend(); ++it) {
    if (!(*it)->exited && !(*it)->terminate) {
      ++live;
      if (victim == nullptr) victim = *it;
    }
  }
  if (victim == nullptr || live <= 1) return false;
  victim->terminate = true;
  // An idle/parked/waiting victim can unwind immediately.
  if (inst->parked.count(victim)) {
    WorkerExit(victim);
    MaybeAdvanceStage(inst);
  } else if (victim->state == Worker::State::kWaitInput) {
    const SimStageSpec& stage = inst->spec->stages[inst->stage];
    Channel* ch = GetChannel(stage.input_exchange, inst->node_id);
    if (ch != nullptr) {
      auto& ws = ch->recv_waiters;
      ws.erase(std::remove(ws.begin(), ws.end(), victim), ws.end());
    }
    inst->seg_stats.blocked_input_ns.fetch_add(Now() - victim->wait_start,
                                               std::memory_order_relaxed);
    WorkerExit(victim);
  }
  return true;
}

// --- EP scheduler ticks ----------------------------------------------------------

void SimRun::Impl::FlushWaitTimes() {
  int64_t now = Now();
  for (auto& w : workers_) {
    if (w->exited) continue;
    Instance* sink = StatsTarget(w.get());
    if (sink == nullptr) continue;
    if (w->state == Worker::State::kWaitInput) {
      sink->seg_stats.blocked_input_ns.fetch_add(now - w->wait_start,
                                                 std::memory_order_relaxed);
      w->wait_start = now;
    } else if (w->state == Worker::State::kWaitOutput) {
      sink->seg_stats.blocked_output_ns.fetch_add(now - w->wait_start,
                                                  std::memory_order_relaxed);
      w->wait_start = now;
    }
  }
}

void SimRun::Impl::ScheduleTick() {
  events_.ScheduleAfter(opt_.scheduler_period_ns, [this] {
    if (done_) return;
    FlushWaitTimes();
    // Liveness sweep: stage transitions that no worker event will trigger
    // (e.g. an upstream close observed by nobody).
    for (auto& inst : instances_) MaybeAdvanceStage(inst.get());
    if (opt_.policy == SimPolicy::kElastic) {
      for (auto& node : nodes_) {
        int segments = 0;
        for (auto& inst : instances_) {
          if (inst->node_id == node->id && inst->active()) ++segments;
        }
        node->scheduler->Tick();
        node->sched_overhead_ns += static_cast<int64_t>(
            opt_.costs.ep_tick_ns_per_segment * segments);
      }
    }
    // Trace node-0 parallelism (Figs. 10–12).
    SimTracePoint point;
    point.t_ns = Now();
    for (size_t s = 0; s < spec_.segments.size(); ++s) {
      int p = 0;
      for (auto& inst : instances_) {
        if (inst->spec_index == static_cast<int>(s) && inst->node_id == 0 &&
            !inst->finished_flag) {
          p = inst->parallelism();
        }
      }
      point.parallelism.push_back(p);
    }
    trace_.push_back(std::move(point));
    ScheduleTick();
  });
}

// --- Run --------------------------------------------------------------------------

Result<SimMetrics> SimRun::Impl::Run() {
  const SimHardware& hw = opt_.hardware;
  for (int n = 0; n < opt_.num_nodes; ++n) {
    auto node = std::make_unique<NodeState>();
    node->id = n;
    if (opt_.policy == SimPolicy::kElastic) {
      SchedulerOptions so = opt_.scheduler;
      so.num_cores = hw.logical_cores;
      // Simulated nodes trace under pid 1000+n so one capture can hold both
      // the real engine (pids = node ids) and the simulator.
      so.trace_pid = 1000 + n;
      node->scheduler = std::make_unique<DynamicScheduler>(
          n, so, events_.clock(), &board_);
    }
    nodes_.push_back(std::move(node));
  }
  ScheduleFaults();

  // Channels.
  bool unbounded = opt_.policy == SimPolicy::kMaterialized;
  for (const SimSegmentSpec& seg : spec_.segments) {
    for (int c : seg.consumer_nodes) {
      auto key = std::make_pair(seg.out_exchange, c);
      if (channels_.count(key) == 0) {
        auto ch = std::make_unique<Channel>();
        ch->exchange = seg.out_exchange;
        ch->node = c;
        ch->capacity_blocks = unbounded ? 0 : opt_.channel_capacity_blocks;
        ch->materialized = unbounded;
        ch->auto_drain = seg.out_exchange == spec_.result_exchange;
        channels_.emplace(key, std::move(ch));
      }
      channels_[key]->open_producers +=
          static_cast<int>(seg.nodes.size());
    }
  }

  // Instances.
  for (size_t s = 0; s < spec_.segments.size(); ++s) {
    const SimSegmentSpec& seg = spec_.segments[s];
    if (seg.stages.empty()) return Status::InvalidArgument("empty segment");
    for (int n : seg.nodes) {
      auto inst = std::make_unique<Instance>();
      inst->impl = this;
      inst->spec = &seg;
      inst->spec_index = static_cast<int>(s);
      inst->node_id = n;
      inst->node = nodes_[static_cast<size_t>(n)].get();
      const SimStageSpec& first = seg.stages[0];
      inst->source_remaining =
          first.input_exchange < 0 ? first.source_tuples_per_node : 0;
      inst->stage_input_total = inst->source_remaining;
      instances_.push_back(std::move(inst));
    }
  }

  // Workers.
  const bool pool_policy = opt_.policy == SimPolicy::kMorsel ||
                           opt_.policy == SimPolicy::kMorselPlus;
  auto start_instance = [&](Instance* inst) {
    inst->started = true;
    inst->start_vns = Now();
    if (pool_policy) return;
    int threads = opt_.parallelism;
    if (opt_.policy == SimPolicy::kImplicit) {
      // c·m threads per node split across this node's segments.
      int segs = 0;
      for (auto& other : instances_) {
        if (other->node_id == inst->node_id) ++segs;
      }
      threads = std::max<int>(
          1, static_cast<int>(opt_.concurrency_level * hw.logical_cores) /
                 std::max(1, segs));
    }
    for (int t = 0; t < threads; ++t) {
      ExpandInstance(inst, t);
    }
    AssignStaticShares(inst);
    if (opt_.policy == SimPolicy::kElastic) {
      inst->node->scheduler->AddSegment(inst);
    }
  };

  rng_ = Rng(opt_.seed);

  // Declared at function scope so it outlives the event loop below;
  // scheduled copies hold only a weak_ptr, so the polling closure neither
  // leaks (no shared_ptr cycle) nor dies while the simulation still runs.
  std::shared_ptr<std::function<void()>> try_activate;
  if (opt_.policy == SimPolicy::kMaterialized) {
    // Group-at-a-time: a segment starts once every input exchange it reads
    // has been fully materialized (all producers finished).
    try_activate = std::make_shared<std::function<void()>>();
    std::weak_ptr<std::function<void()>> weak_activate = try_activate;
    *try_activate = [this, start_instance, weak_activate] {
      for (auto& inst : instances_) {
        if (inst->started) continue;
        bool ready = true;
        for (const SimStageSpec& st : inst->spec->stages) {
          if (st.input_exchange < 0) continue;
          Channel* ch = GetChannel(st.input_exchange, inst->node_id);
          if (ch == nullptr || !ch->closed()) ready = false;
        }
        if (ready) start_instance(inst.get());
      }
      if (done_) return;
      if (auto self = weak_activate.lock()) {
        events_.ScheduleAfter(1'000'000, *self);
      }
    };
    (*try_activate)();
  } else {
    for (auto& inst : instances_) start_instance(inst.get());
    if (pool_policy) {
      for (auto& node : nodes_) {
        int threads = std::max<int>(
            1, static_cast<int>(opt_.concurrency_level * hw.logical_cores));
        for (int t = 0; t < threads; ++t) {
          auto worker = std::make_unique<Worker>();
          worker->id = next_worker_id_++;
          worker->node = node.get();
          worker->pool = true;
          Worker* w = worker.get();
          workers_.push_back(std::move(worker));
          ScheduleTryStart(w);
        }
      }
    }
  }
  ScheduleTick();

  // Drive the simulation.
  while (!done_) {
    if (!events_.RunNext()) break;
    if (Now() > opt_.max_sim_ns) {
      std::string detail = "simulation exceeded max_sim_ns (livelock?):";
      for (auto& inst : instances_) {
        if (inst->node_id != 0) continue;
        const SimStageSpec& st = inst->spec->stages[inst->stage];
        Channel* in = st.input_exchange >= 0
                          ? GetChannel(st.input_exchange, 0)
                          : nullptr;
        detail += StrFormat(
            " %s[fin=%d stage=%d src=%lld inq=%zd inflight=%d parked=%zu "
            "outbox=%zu waiters=%zu fwd=%d]",
            inst->spec->name.c_str(), inst->finished_flag ? 1 : 0,
            inst->stage, static_cast<long long>(inst->source_remaining),
            in != nullptr ? static_cast<ssize_t>(in->queue.size()) : -1,
            inst->in_flight, inst->parked.size(), inst->outbox.size(),
            inst->outbox_waiters.size(), inst->finish_when_drained ? 1 : 0);
      }
      int idle = 0, busy = 0, win = 0, wout = 0;
      for (auto& w : workers_) {
        if (w->exited) continue;
        switch (w->state) {
          case Worker::State::kIdle: ++idle; break;
          case Worker::State::kBusy: ++busy; break;
          case Worker::State::kWaitInput: ++win; break;
          case Worker::State::kWaitOutput: ++wout; break;
        }
      }
      detail += StrFormat(" workers idle=%d busy=%d win=%d wout=%d", idle,
                          busy, win, wout);
      return Status::Internal(detail);
    }
  }
  if (!done_) {
    return Status::Internal("simulation stalled: no events but query unfinished");
  }

  // --- metrics -------------------------------------------------------------------
  SimMetrics m;
  m.response_ns = done_at_;
  double busy_integral = 0;
  double switches = 0;
  int64_t sched_ns = 0;
  for (auto& node : nodes_) {
    TouchNodeBusy(node.get());
    busy_integral += node->busy_core_integral_ns;
    switches += node->context_switches;
    sched_ns += node->sched_overhead_ns;
  }
  double denom = static_cast<double>(done_at_) * opt_.num_nodes *
                 hw.logical_cores;
  m.avg_cpu_utilization = denom > 0 ? busy_integral / denom : 0;
  m.context_switches_per_sec =
      done_at_ > 0 ? switches * 1e9 / static_cast<double>(done_at_) /
                         opt_.num_nodes
                   : 0;
  m.scheduling_overhead =
      done_at_ > 0 ? static_cast<double>(sched_ns) /
                         static_cast<double>(done_at_) / opt_.num_nodes
                   : 0;
  m.peak_memory_bytes = mem_peak_;
  m.network_bytes = network_bytes_;
  m.fault_log = FormatFaultEventLog(fault_events_);

  // High-utilization windows: avg CPU across nodes, or any saturated NIC.
  int64_t nwin = done_at_ / opt_.utilization_window_ns + 1;
  int high = 0;
  for (int64_t wdx = 0; wdx < nwin; ++wdx) {
    double cpu = 0;
    double net = 0;
    for (auto& node : nodes_) {
      if (wdx < static_cast<int64_t>(node->window_busy_core_ns.size())) {
        cpu += node->window_busy_core_ns[static_cast<size_t>(wdx)];
      }
      if (wdx < static_cast<int64_t>(node->window_net_ns.size())) {
        net = std::max(net, node->window_net_ns[static_cast<size_t>(wdx)]);
      }
    }
    double cpu_util = cpu / (static_cast<double>(opt_.utilization_window_ns) *
                             opt_.num_nodes * hw.logical_cores);
    double net_util = net / static_cast<double>(opt_.utilization_window_ns);
    if (cpu_util >= opt_.high_utilization_threshold ||
        net_util >= opt_.high_utilization_threshold) {
      ++high;
    }
  }
  m.high_utilization_rate = nwin > 0 ? static_cast<double>(high) / nwin : 0;

  // Modelled cache-miss proxy (documented substitution, DESIGN.md §1): base
  // locality plus time-sharing thrash, minus a small-unit bonus.
  double threads_per_core =
      pool_policy || opt_.policy == SimPolicy::kImplicit
          ? opt_.concurrency_level
          : 1.0;
  double thrash = std::min(1.0, std::max(0.0, (threads_per_core - 1.0) / 4.0));
  double unit_bonus = 0;
  if (pool_policy && opt_.unit_bytes < kBlockBytes && threads_per_core <= 1.0) {
    unit_bonus = 0.20 * (1.0 - static_cast<double>(opt_.unit_bytes) /
                                   kBlockBytes);
  }
  m.cache_miss_ratio = std::clamp(0.41 + 0.34 * thrash - unit_bonus, 0.0, 1.0);

  m.trace = std::move(trace_);
  for (size_t s = 0; s < spec_.segments.size(); ++s) {
    int64_t t = -1;
    for (auto& inst : instances_) {
      if (inst->spec_index == static_cast<int>(s) && inst->node_id == 0) {
        t = inst->first_stage_switch_ns;
      }
    }
    m.stage_switch_ns.push_back(t);
  }
  // Convergence: last virtual time the node-0 core assignment moved by > 1.
  m.convergence_ns = 0;
  for (size_t i = 1; i < m.trace.size(); ++i) {
    int delta = 0;
    for (size_t s = 0; s < m.trace[i].parallelism.size(); ++s) {
      delta += std::abs(m.trace[i].parallelism[s] -
                        m.trace[i - 1].parallelism[s]);
    }
    if (delta > 1) m.convergence_ns = m.trace[i].t_ns;
  }
  return m;
}

SimRun::SimRun(SimQuerySpec spec, SimOptions options)
    : impl_(std::make_unique<Impl>(std::move(spec), std::move(options))) {}

SimRun::~SimRun() = default;

Result<SimMetrics> SimRun::Run() { return impl_->Run(); }

}  // namespace claims
