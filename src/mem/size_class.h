#ifndef CLAIMS_MEM_SIZE_CLASS_H_
#define CLAIMS_MEM_SIZE_CLASS_H_

#include <cstddef>

namespace claims {

/// Power-of-two size classes for the recycling block pool: 4 KiB .. 8 MiB
/// (12 classes). Requests above the largest class take the oversized
/// direct-allocation path (class index -1) and are never cached.
///
/// The range is chosen to bracket the allocation sizes the runtime actually
/// makes: DataBuffer blocks are kDefaultBlockBytes (64 KiB), Arena chunks
/// default to 256 KiB (join) / 1 MiB (standalone), and hash-table bucket
/// arrays land between 128 KiB and 8 MiB at the planner's default widths.
inline constexpr size_t kMinSizeClassBytes = size_t{4} << 10;   // 4 KiB
inline constexpr size_t kMaxSizeClassBytes = size_t{8} << 20;   // 8 MiB
inline constexpr int kNumSizeClasses = 12;

/// Byte size of class `cls`; cls must be in [0, kNumSizeClasses).
constexpr size_t SizeClassBytes(int cls) { return kMinSizeClassBytes << cls; }

/// Smallest class whose block fits `bytes`, or -1 when `bytes` exceeds the
/// largest class (oversized). Zero-byte requests map to class 0.
constexpr int SizeClassFor(size_t bytes) {
  if (bytes > kMaxSizeClassBytes) return -1;
  int cls = 0;
  size_t size = kMinSizeClassBytes;
  while (size < bytes) {
    size <<= 1;
    ++cls;
  }
  return cls;
}

static_assert(SizeClassBytes(kNumSizeClasses - 1) == kMaxSizeClassBytes,
              "class table must end exactly at kMaxSizeClassBytes");
static_assert(SizeClassFor(1) == 0 && SizeClassFor(kMinSizeClassBytes) == 0,
              "sub-minimum requests round up to the smallest class");
static_assert(SizeClassFor(kMinSizeClassBytes + 1) == 1,
              "boundary + 1 spills into the next class");
static_assert(SizeClassFor(kMaxSizeClassBytes) == kNumSizeClasses - 1 &&
                  SizeClassFor(kMaxSizeClassBytes + 1) == -1,
              "largest class is inclusive; beyond it is oversized");

}  // namespace claims

#endif  // CLAIMS_MEM_SIZE_CLASS_H_
