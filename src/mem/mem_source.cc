#include "mem/mem_source.h"

#include "common/memory_tracker.h"
#include "mem/query_budget.h"
#include "obs/metrics_registry.h"

namespace claims {

PoolAlloc MemSource::AllocateChunk(size_t min_bytes) const {
  PoolAlloc alloc;
  if (pool != nullptr) {
    // Budget-backed allocations are strict: the pool's pressure cap refuses
    // them so the degradation ladder engages instead of silently growing.
    alloc = pool->Allocate(min_bytes, /*strict=*/budget != nullptr);
    if (!alloc) {
      if (budget != nullptr) budget->NotePressure();
      // One retry after the shrink hook had its chance to free capacity.
      alloc = pool->Allocate(min_bytes, /*strict=*/budget != nullptr);
      if (!alloc) return {};
    }
  } else {
    alloc.data = new char[min_bytes];
    alloc.bytes = min_bytes;
  }
  if (budget != nullptr && !budget->Charge(static_cast<int64_t>(alloc.bytes))) {
    if (pool != nullptr) {
      pool->Release(alloc);
    } else {
      delete[] alloc.data;
    }
    return {};
  }
  if (tracker != nullptr) {
    tracker->Allocate(static_cast<int64_t>(alloc.bytes));
  }
  return alloc;
}

void MemSource::ReleaseChunk(PoolAlloc alloc, bool recycled) const {
  if (alloc.data == nullptr) return;
  if (tracker != nullptr) {
    tracker->Release(static_cast<int64_t>(alloc.bytes));
  }
  if (budget != nullptr) {
    budget->Release(static_cast<int64_t>(alloc.bytes));
  }
  if (recycled) {
    static MetricCounter* recycled_metric =
        MetricsRegistry::Global()->counter("arena.recycled_bytes");
    recycled_metric->Add(static_cast<int64_t>(alloc.bytes));
  }
  if (pool != nullptr) {
    pool->Release(alloc);
  } else {
    delete[] alloc.data;
  }
}

}  // namespace claims
