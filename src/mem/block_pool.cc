#include "mem/block_pool.h"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics_registry.h"

namespace claims {

namespace {
/// Distinguishes pools inside the per-thread cache map. Monotone, never
/// reused, so a stale map entry for a destroyed pool can never be looked up
/// again (a new pool always carries a new serial).
std::atomic<uint64_t> g_pool_serial{1};
}  // namespace

/// One free list per (size class, simulated node). Its own mutex, so
/// different classes and nodes never contend with each other.
struct BlockPool::CentralList {
  std::mutex mu;
  std::vector<char*> blocks;
};

/// Per-thread, per-pool cache: one bounded magazine per size class. Touched
/// only by the owning thread; the pool owns the storage so teardown does not
/// depend on thread exit order.
struct BlockPool::ThreadCache {
  int node = 0;
  std::vector<char*> magazines[kNumSizeClasses];
};

BlockPool::BlockPool() : BlockPool(Options()) {}

BlockPool::BlockPool(Options options)
    : options_(std::move(options)),
      serial_(g_pool_serial.fetch_add(1, std::memory_order_relaxed)) {
  const int nodes = std::max(1, options_.num_nodes);
  central_.reserve(static_cast<size_t>(kNumSizeClasses) * nodes);
  for (int i = 0; i < kNumSizeClasses * nodes; ++i) {
    central_.push_back(std::make_unique<CentralList>());
  }
  if (!options_.metric_prefix.empty()) {
    MetricsRegistry* reg = MetricsRegistry::Global();
    const std::string& p = options_.metric_prefix;
    live_gauge_ = reg->gauge(p + ".live_bytes");
    central_gauge_ = reg->gauge(p + ".cached_bytes");
    cap_gauge_ = reg->gauge(p + ".pressure_cap_bytes");
    hits_metric_ = reg->counter(p + ".hits");
    misses_metric_ = reg->counter(p + ".misses");
    oversized_metric_ = reg->counter(p + ".oversized");
    recycled_metric_ = reg->counter(p + ".recycled_bytes");
    released_os_metric_ = reg->counter(p + ".released_to_os_bytes");
    pressure_rejects_metric_ = reg->counter(p + ".pressure_rejects");
    pressure_fallbacks_metric_ = reg->counter(p + ".pressure_fallbacks");
    numa_remote_metric_ = reg->counter(p + ".numa_remote");
  }
}

BlockPool::~BlockPool() {
  // By destruction time no thread may still be allocating from this pool;
  // every cached chunk (magazines + central tier) is plain new[] storage.
  for (auto& cache : caches_) {
    for (auto& mag : cache->magazines) {
      for (char* b : mag) delete[] b;
    }
  }
  for (auto& list : central_) {
    for (char* b : list->blocks) delete[] b;
  }
}

BlockPool* BlockPool::Global() {
  // Leaked on purpose: worker threads and static destruction order must
  // never race a pool teardown.
  static BlockPool* pool = [] {
    Options o;
    o.metric_prefix = "mem.pool";
    return new BlockPool(std::move(o));
  }();
  return pool;
}

BlockPool::ThreadCache* BlockPool::LocalCache() {
  thread_local std::unordered_map<uint64_t, ThreadCache*> caches;
  auto it = caches.find(serial_);
  if (it != caches.end()) return it->second;
  auto owned = std::make_unique<ThreadCache>();
  ThreadCache* cache = owned.get();
  {
    std::lock_guard<std::mutex> lock(caches_mu_);
    cache->node = next_node_;
    next_node_ = (next_node_ + 1) % std::max(1, options_.num_nodes);
    caches_.push_back(std::move(owned));
  }
  caches.emplace(serial_, cache);
  return cache;
}

char* BlockPool::PopCentral(int cls, int node) {
  CentralList& list =
      *central_[static_cast<size_t>(cls) * std::max(1, options_.num_nodes) +
                node];
  std::lock_guard<std::mutex> lock(list.mu);
  if (list.blocks.empty()) return nullptr;
  char* b = list.blocks.back();
  list.blocks.pop_back();
  central_bytes_.fetch_sub(static_cast<int64_t>(SizeClassBytes(cls)),
                           std::memory_order_relaxed);
  return b;
}

void BlockPool::PushCentral(int cls, int node, char* data) {
  const int64_t bytes = static_cast<int64_t>(SizeClassBytes(cls));
  if (central_bytes_.load(std::memory_order_relaxed) + bytes >
      static_cast<int64_t>(options_.max_central_bytes)) {
    delete[] data;
    released_to_os_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (released_os_metric_ != nullptr) released_os_metric_->Add(bytes);
    return;
  }
  CentralList& list =
      *central_[static_cast<size_t>(cls) * std::max(1, options_.num_nodes) +
                node];
  std::lock_guard<std::mutex> lock(list.mu);
  list.blocks.push_back(data);
  central_bytes_.fetch_add(bytes, std::memory_order_relaxed);
}

PoolAlloc BlockPool::Allocate(size_t min_bytes, bool strict) {
  const int cls = SizeClassFor(min_bytes);
  const size_t bytes = cls >= 0 ? SizeClassBytes(cls) : min_bytes;

  const int64_t cap = pressure_cap_bytes_.load(std::memory_order_relaxed);
  if (cap > 0 && live_bytes_.load(std::memory_order_relaxed) +
                         static_cast<int64_t>(bytes) >
                     cap) {
    if (strict) {
      pressure_rejects_.fetch_add(1, std::memory_order_relaxed);
      if (pressure_rejects_metric_ != nullptr) pressure_rejects_metric_->Add();
      return {};
    }
    // Non-strict callers (transit blocks mid-pipeline) must never fail; the
    // squeeze is made visible instead of being enforced.
    pressure_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    if (pressure_fallbacks_metric_ != nullptr) {
      pressure_fallbacks_metric_->Add();
    }
  }

  ThreadCache* cache = LocalCache();
  char* data = nullptr;
  bool recycled = false;
  if (cls >= 0) {
    std::vector<char*>& mag = cache->magazines[cls];
    if (!mag.empty()) {
      data = mag.back();
      mag.pop_back();
      recycled = true;
    } else {
      // Refill half a magazine from the central tier: home node first, then
      // steal from the other nodes (counted, so remote traffic is visible).
      const int nodes = std::max(1, options_.num_nodes);
      const int want = std::max(1, options_.magazine_capacity / 2);
      for (int step = 0; step < nodes && static_cast<int>(mag.size()) < want;
           ++step) {
        const int node = (cache->node + step) % nodes;
        while (static_cast<int>(mag.size()) < want) {
          char* b = PopCentral(cls, node);
          if (b == nullptr) break;
          if (step != 0) {
            numa_remote_.fetch_add(1, std::memory_order_relaxed);
            if (numa_remote_metric_ != nullptr) numa_remote_metric_->Add();
          }
          mag.push_back(b);
        }
      }
      if (!mag.empty()) {
        data = mag.back();
        mag.pop_back();
        recycled = true;
      }
    }
  } else {
    oversized_.fetch_add(1, std::memory_order_relaxed);
    if (oversized_metric_ != nullptr) oversized_metric_->Add();
  }

  if (recycled) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_metric_ != nullptr) hits_metric_->Add();
    recycled_bytes_.fetch_add(static_cast<int64_t>(bytes),
                              std::memory_order_relaxed);
    if (recycled_metric_ != nullptr) {
      recycled_metric_->Add(static_cast<int64_t>(bytes));
    }
  } else {
    data = new char[bytes];
    if (cls >= 0) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      if (misses_metric_ != nullptr) misses_metric_->Add();
    }
  }

  live_bytes_.fetch_add(static_cast<int64_t>(bytes),
                        std::memory_order_relaxed);
  PublishGauges();

  PoolAlloc out;
  out.data = data;
  out.bytes = bytes;
  out.size_class = cls;
  out.numa_node = cache->node;
  return out;
}

void BlockPool::Release(PoolAlloc alloc) {
  if (alloc.data == nullptr) return;
  live_bytes_.fetch_sub(static_cast<int64_t>(alloc.bytes),
                        std::memory_order_relaxed);
  if (alloc.size_class < 0) {
    // Oversized chunks are never cached.
    delete[] alloc.data;
    released_to_os_bytes_.fetch_add(static_cast<int64_t>(alloc.bytes),
                                    std::memory_order_relaxed);
    if (released_os_metric_ != nullptr) {
      released_os_metric_->Add(static_cast<int64_t>(alloc.bytes));
    }
    PublishGauges();
    return;
  }

  ThreadCache* cache = LocalCache();
  if (alloc.numa_node >= 0 && alloc.numa_node != cache->node) {
    // The chunk re-homes to the releasing thread's node; count the migration.
    numa_remote_.fetch_add(1, std::memory_order_relaxed);
    if (numa_remote_metric_ != nullptr) numa_remote_metric_->Add();
  }
  std::vector<char*>& mag = cache->magazines[alloc.size_class];
  mag.push_back(alloc.data);
  if (static_cast<int>(mag.size()) > options_.magazine_capacity) {
    // Magazine overflow: exchange the older half with the central tier.
    const int keep = std::max(1, options_.magazine_capacity / 2);
    while (static_cast<int>(mag.size()) > keep) {
      char* b = mag.front();
      mag.erase(mag.begin());
      PushCentral(alloc.size_class, cache->node, b);
    }
  }
  PublishGauges();
}

void BlockPool::SetPressureCapBytes(int64_t cap) {
  pressure_cap_bytes_.store(cap > 0 ? cap : 0, std::memory_order_relaxed);
  if (cap_gauge_ != nullptr) cap_gauge_->Set(cap > 0 ? cap : 0);
}

BlockPool::Stats BlockPool::GetStats() const {
  Stats s;
  s.live_bytes = live_bytes_.load(std::memory_order_relaxed);
  s.central_bytes = central_bytes_.load(std::memory_order_relaxed);
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.oversized = oversized_.load(std::memory_order_relaxed);
  s.recycled_bytes = recycled_bytes_.load(std::memory_order_relaxed);
  s.released_to_os_bytes =
      released_to_os_bytes_.load(std::memory_order_relaxed);
  s.pressure_rejects = pressure_rejects_.load(std::memory_order_relaxed);
  s.pressure_fallbacks = pressure_fallbacks_.load(std::memory_order_relaxed);
  s.numa_remote = numa_remote_.load(std::memory_order_relaxed);
  return s;
}

void BlockPool::TrimCaches() {
  for (size_t i = 0; i < central_.size(); ++i) {
    CentralList& list = *central_[i];
    std::vector<char*> drained;
    {
      std::lock_guard<std::mutex> lock(list.mu);
      drained.swap(list.blocks);
    }
    const int cls = static_cast<int>(i / std::max(1, options_.num_nodes));
    const int64_t bytes =
        static_cast<int64_t>(SizeClassBytes(cls)) * drained.size();
    central_bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    released_to_os_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    if (released_os_metric_ != nullptr) released_os_metric_->Add(bytes);
    for (char* b : drained) delete[] b;
  }
  PublishGauges();
}

void BlockPool::PublishGauges() {
  if (live_gauge_ == nullptr) return;
  live_gauge_->Set(
      static_cast<double>(live_bytes_.load(std::memory_order_relaxed)));
  central_gauge_->Set(
      static_cast<double>(central_bytes_.load(std::memory_order_relaxed)));
}

}  // namespace claims
