#ifndef CLAIMS_MEM_QUERY_BUDGET_H_
#define CLAIMS_MEM_QUERY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/macros.h"

namespace claims {

class MetricCounter;
class MetricGauge;

/// Per-query memory ledger that makes the admission budget binding. Every
/// pool-backed allocation owned by a query charges its actual rounded-up
/// bytes here before the memory is used; Charge refuses to let `charged`
/// exceed `budget` — that is the ledger invariant the mempressure stress
/// test samples every millisecond.
///
/// Degradation ladder (docs/MEMORY.md): a refused charge first invokes the
/// shrink hook (the executor asks DynamicScheduler to cut the widest live
/// segment's parallelism, releasing that worker's buffers) and retries once.
/// If the charge still fails, the *call site* decides the next rung — the
/// hash-agg build spills its largest private table to a cold SpillRun and
/// retries; only when that is exhausted does the operator latch
/// MarkRejected() and fail the query with kResourceExhausted.
///
/// Charge deliberately does NOT latch rejected: a breach that spilling
/// recovers from is not a failure, and a latched flag would misclassify a
/// later unrelated Internal error as ResourceExhausted.
class QueryBudget {
 public:
  /// budget_bytes <= 0 means unbounded (charges always succeed); the ledger
  /// still tracks charged/peak so reports stay uniform.
  QueryBudget(std::string label, int64_t budget_bytes);
  ~QueryBudget();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(QueryBudget);

  /// Single CAS attempt; never exceeds the budget, never calls the hook.
  bool TryCharge(int64_t bytes);

  /// TryCharge, and on failure: run the shrink hook (if any) and retry once.
  /// Returns false when the query is genuinely over budget after shrinking.
  bool Charge(int64_t bytes);

  void Release(int64_t bytes);

  /// Latched by the operator that finally gives up on an allocation; the
  /// executor maps a failed segment with rejected() to kResourceExhausted.
  void MarkRejected();
  bool rejected() const {
    return rejected_.load(std::memory_order_acquire);
  }

  /// Pool-level squeeze (strict alloc refused by the pressure cap, not by
  /// this ledger): gives the shrink hook a chance before the caller spills.
  void NotePressure();

  void AddSpilledBytes(int64_t bytes);

  /// Installed by the executor before workers start (mutex-guarded; the hook
  /// itself must not call back into this budget). Returns true if it managed
  /// to shrink anything.
  void SetShrinkHook(std::function<bool()> hook);

  int64_t budget_bytes() const { return budget_bytes_; }
  int64_t charged_bytes() const {
    return charged_.load(std::memory_order_relaxed);
  }
  int64_t peak_charged_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  int64_t spilled_bytes() const {
    return spilled_.load(std::memory_order_relaxed);
  }
  const std::string& label() const { return label_; }

  /// Sum of charged bytes across all live QueryBudgets (process aggregate
  /// behind the mem.charged_bytes gauge).
  static int64_t TotalChargedBytes();

 private:
  bool RunShrinkHook();

  const std::string label_;
  const int64_t budget_bytes_;
  std::atomic<int64_t> charged_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> spilled_{0};
  std::atomic<bool> rejected_{false};

  std::mutex hook_mu_;
  std::function<bool()> shrink_hook_;

  MetricCounter* shrinks_metric_;
  MetricCounter* rejects_metric_;
};

}  // namespace claims

#endif  // CLAIMS_MEM_QUERY_BUDGET_H_
