#ifndef CLAIMS_MEM_SPILL_H_
#define CLAIMS_MEM_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace claims {

/// One cold-tier run: an anonymous temp file (std::tmpfile — unlinked at
/// creation, reclaimed by the OS even on crash) a memory-pressured operator
/// serializes state into, then reads back wholesale when it is time to merge.
/// Write-once, read-after-Finish; single writer, single reader — the hash-agg
/// spill path serializes one private table per run under the operator's own
/// lock, so the run itself needs no locking.
class SpillRun {
 public:
  /// nullptr when the temp file could not be created (disk full, no /tmp) —
  /// the caller falls through to the last rung, kResourceExhausted.
  static std::unique_ptr<SpillRun> Create();

  ~SpillRun();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(SpillRun);

  Status Append(const void* data, size_t bytes);

  /// Flushes and seals the run; Append is invalid afterwards.
  Status Finish();

  /// Reads the whole run back. Byte-identical to what was appended (the
  /// round-trip is pinned by tests/mem_pool_test.cc).
  Status ReadAll(std::vector<char>* out) const;

  int64_t bytes() const { return bytes_; }

 private:
  explicit SpillRun(std::FILE* file) : file_(file) {}

  std::FILE* file_;
  int64_t bytes_ = 0;
  bool finished_ = false;
};

}  // namespace claims

#endif  // CLAIMS_MEM_SPILL_H_
