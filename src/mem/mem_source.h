#ifndef CLAIMS_MEM_MEM_SOURCE_H_
#define CLAIMS_MEM_MEM_SOURCE_H_

#include <cstddef>
#include <cstdint>

#include "mem/block_pool.h"

namespace claims {

class MemoryTracker;
class QueryBudget;

/// Where a component's big allocations come from and who pays for them:
/// a BlockPool (nullptr = legacy direct new[]), a MemoryTracker category
/// (nullptr = untracked), and the owning query's QueryBudget (nullptr =
/// unbudgeted). Small value type, passed by copy through operator specs.
///
/// AllocateChunk is the one place the degradation handshake lives:
///   pool alloc (strict iff budgeted) -> budget charge -> tracker charge.
/// A pool refusal notifies the budget (NotePressure -> shrink hook) before
/// reporting failure; a budget refusal returns the chunk to the pool. The
/// caller never sees a chunk whose actual bytes are not already charged.
struct MemSource {
  BlockPool* pool = nullptr;
  MemoryTracker* tracker = nullptr;
  QueryBudget* budget = nullptr;

  /// Returns an empty PoolAlloc when the budget (or a strict pool cap)
  /// refuses; the caller runs the next rung of the degradation ladder.
  PoolAlloc AllocateChunk(size_t min_bytes) const;

  /// Releases the chunk and refunds every ledger AllocateChunk charged.
  /// `recycled` distinguishes Arena reuse (arena.recycled_bytes) from final
  /// teardown in the counter it bumps.
  void ReleaseChunk(PoolAlloc alloc, bool recycled = false) const;
};

}  // namespace claims

#endif  // CLAIMS_MEM_MEM_SOURCE_H_
