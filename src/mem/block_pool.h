#ifndef CLAIMS_MEM_BLOCK_POOL_H_
#define CLAIMS_MEM_BLOCK_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "mem/size_class.h"

namespace claims {

class MetricCounter;
class MetricGauge;

/// A chunk handed out by BlockPool. `bytes` is the actual (rounded-up) size
/// of the allocation — callers charge ledgers with this, not with the size
/// they asked for, so accounting matches what the pool really holds.
struct PoolAlloc {
  char* data = nullptr;
  size_t bytes = 0;
  /// Size class the chunk belongs to; -1 for oversized direct allocations.
  int size_class = -1;
  /// Simulated NUMA node the chunk is tagged with (the allocating thread's
  /// home node). Observability only on a one-socket box, but it makes
  /// placement visible in /metrics and keeps the plumbing honest for real
  /// NUMA later.
  int numa_node = -1;

  explicit operator bool() const { return data != nullptr; }
};

/// Recycling block pool with power-of-two size classes (mem/size_class.h),
/// thread-local magazines, and a shared central tier of per-(class, node)
/// free lists. Modelled on the size-classed schemes Durner et al. show are
/// worth >2x on in-memory query processing: the hot path (magazine hit) is
/// a thread-local pop with no atomics; misses exchange half a magazine with
/// the central tier under a short mutex.
///
/// Pressure: SetPressureCapBytes(cap) bounds live (handed-out) bytes.
/// `strict` allocations fail once the cap is hit — that is the signal the
/// degradation ladder (shrink -> spill -> kResourceExhausted, see
/// docs/MEMORY.md) is built on. Non-strict allocations always succeed (the
/// transit-block path must never wedge a pipeline mid-stream); under the cap
/// they are counted as pressure fallbacks so chaos runs can see the squeeze.
///
/// Thread-safety: fully thread-safe. Magazines are thread-local; cross-thread
/// block handoff happens only through the central mutex, so TSan sees a clean
/// release/acquire chain on recycled memory.
class BlockPool {
 public:
  struct Options {
    /// Simulated NUMA nodes; thread caches are assigned round-robin.
    int num_nodes = 2;
    /// Per-class magazine capacity of each thread cache. Half a magazine is
    /// exchanged with the central tier on miss/overflow.
    int magazine_capacity = 8;
    /// Bound on idle bytes parked in the central tier (excess is returned to
    /// the OS). Thread magazines are small and not counted against this.
    size_t max_central_bytes = size_t{256} << 20;  // 256 MiB
    /// When non-empty, pool gauges/counters are registered in the global
    /// MetricsRegistry under this prefix ("mem.pool" for the global pool).
    std::string metric_prefix;
  };

  BlockPool();  // default Options
  explicit BlockPool(Options options);
  ~BlockPool();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(BlockPool);

  /// Process-wide pool every subsystem shares by default. Leaked on purpose:
  /// worker threads and static-destruction order must never race a pool
  /// teardown.
  static BlockPool* Global();

  /// Returns a chunk of at least `min_bytes` (rounded up to its size class;
  /// oversized requests are served exactly). Strict allocations return an
  /// empty PoolAlloc when the pressure cap would be exceeded; non-strict
  /// ones always succeed.
  PoolAlloc Allocate(size_t min_bytes, bool strict = false);

  /// Returns a chunk to the pool (magazine first, central tier on overflow).
  /// Accepts empty handles as a no-op so callers can release unconditionally.
  void Release(PoolAlloc alloc);

  /// Caps live (handed-out) bytes; <= 0 removes the cap. The mempressure
  /// fault actuates this.
  void SetPressureCapBytes(int64_t cap);
  int64_t pressure_cap_bytes() const {
    return pressure_cap_bytes_.load(std::memory_order_relaxed);
  }

  /// Point-in-time snapshot of the pool counters (tests, /metrics).
  struct Stats {
    int64_t live_bytes = 0;      ///< handed out, not yet released
    int64_t central_bytes = 0;   ///< idle in the central tier
    int64_t hits = 0;            ///< served from magazine or central tier
    int64_t misses = 0;          ///< had to allocate fresh from the OS
    int64_t oversized = 0;       ///< direct allocations above the max class
    int64_t recycled_bytes = 0;  ///< bytes served from recycled chunks
    int64_t released_to_os_bytes = 0;
    int64_t pressure_rejects = 0;    ///< strict allocations refused by cap
    int64_t pressure_fallbacks = 0;  ///< non-strict allocations under cap
    int64_t numa_remote = 0;  ///< releases landing on a foreign node's list
  };
  Stats GetStats() const;

  /// Drains the central tier back to the OS (tests; between bench reps).
  /// Thread magazines and live allocations are unaffected — magazines belong
  /// to their owning threads and cannot be drained from outside race-free.
  void TrimCaches();

 private:
  struct CentralList;
  struct ThreadCache;

  ThreadCache* LocalCache();
  char* PopCentral(int cls, int node);
  void PushCentral(int cls, int node, char* data);
  void PublishGauges();

  const Options options_;
  const uint64_t serial_;  ///< distinguishes pools in thread-local maps

  std::atomic<int64_t> pressure_cap_bytes_{0};
  std::atomic<int64_t> live_bytes_{0};
  std::atomic<int64_t> central_bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> oversized_{0};
  std::atomic<int64_t> recycled_bytes_{0};
  std::atomic<int64_t> released_to_os_bytes_{0};
  std::atomic<int64_t> pressure_rejects_{0};
  std::atomic<int64_t> pressure_fallbacks_{0};
  std::atomic<int64_t> numa_remote_{0};

  /// Central tier: one free list per (size class, simulated node), each under
  /// its own mutex so classes don't contend with each other.
  std::vector<std::unique_ptr<CentralList>> central_;

  /// The pool owns every thread cache it ever created (threads may outlive or
  /// predecease the pool; ownership here makes teardown deterministic).
  std::mutex caches_mu_;
  std::vector<std::unique_ptr<ThreadCache>> caches_;
  int next_node_ = 0;

  /// Registered once when metric_prefix is set; nullptr otherwise.
  MetricGauge* live_gauge_ = nullptr;
  MetricGauge* central_gauge_ = nullptr;
  MetricGauge* cap_gauge_ = nullptr;
  MetricCounter* hits_metric_ = nullptr;
  MetricCounter* misses_metric_ = nullptr;
  MetricCounter* oversized_metric_ = nullptr;
  MetricCounter* recycled_metric_ = nullptr;
  MetricCounter* released_os_metric_ = nullptr;
  MetricCounter* pressure_rejects_metric_ = nullptr;
  MetricCounter* pressure_fallbacks_metric_ = nullptr;
  MetricCounter* numa_remote_metric_ = nullptr;
};

}  // namespace claims

#endif  // CLAIMS_MEM_BLOCK_POOL_H_
