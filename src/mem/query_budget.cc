#include "mem/query_budget.h"

#include "obs/metrics_registry.h"

namespace claims {

namespace {
/// Process-wide aggregates behind the /metrics gauges. Per-query gauges
/// would be unbounded-cardinality at millions-of-users rates; per-query
/// numbers are exposed through /queries instead (docs/MEMORY.md).
std::atomic<int64_t> g_total_charged{0};
std::atomic<int64_t> g_total_budget{0};

void PublishTotals() {
  // Resolved once; registry lookup takes a mutex and this is the charge path.
  static MetricGauge* charged_gauge =
      MetricsRegistry::Global()->gauge("mem.charged_bytes");
  static MetricGauge* budget_gauge =
      MetricsRegistry::Global()->gauge("mem.budget_bytes");
  charged_gauge->Set(
      static_cast<double>(g_total_charged.load(std::memory_order_relaxed)));
  budget_gauge->Set(
      static_cast<double>(g_total_budget.load(std::memory_order_relaxed)));
}
}  // namespace

QueryBudget::QueryBudget(std::string label, int64_t budget_bytes)
    : label_(std::move(label)),
      budget_bytes_(budget_bytes > 0 ? budget_bytes : 0),
      shrinks_metric_(MetricsRegistry::Global()->counter("mem.degrade.shrinks")),
      rejects_metric_(MetricsRegistry::Global()->counter("mem.degrade.rejects")) {
  g_total_budget.fetch_add(budget_bytes_, std::memory_order_relaxed);
  PublishTotals();
}

QueryBudget::~QueryBudget() {
  g_total_charged.fetch_sub(charged_.load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
  g_total_budget.fetch_sub(budget_bytes_, std::memory_order_relaxed);
  PublishTotals();
}

bool QueryBudget::TryCharge(int64_t bytes) {
  if (bytes <= 0) return true;
  int64_t cur = charged_.load(std::memory_order_relaxed);
  while (true) {
    const int64_t next = cur + bytes;
    if (budget_bytes_ > 0 && next > budget_bytes_) return false;
    if (charged_.compare_exchange_weak(cur, next,
                                       std::memory_order_relaxed)) {
      break;
    }
  }
  const int64_t now = cur + bytes;
  int64_t peak = peak_.load(std::memory_order_relaxed);
  while (now > peak &&
         !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
  }
  g_total_charged.fetch_add(bytes, std::memory_order_relaxed);
  PublishTotals();
  return true;
}

bool QueryBudget::Charge(int64_t bytes) {
  if (TryCharge(bytes)) return true;
  // First rung of the ladder: trade cores for memory, exactly the inverse of
  // the paper's Algorithm 1 trading memory-resident pipelines for cores.
  RunShrinkHook();
  return TryCharge(bytes);
}

void QueryBudget::Release(int64_t bytes) {
  if (bytes <= 0) return;
  charged_.fetch_sub(bytes, std::memory_order_relaxed);
  g_total_charged.fetch_sub(bytes, std::memory_order_relaxed);
  PublishTotals();
}

void QueryBudget::MarkRejected() {
  if (!rejected_.exchange(true, std::memory_order_acq_rel)) {
    rejects_metric_->Add();
  }
}

void QueryBudget::NotePressure() { RunShrinkHook(); }

void QueryBudget::AddSpilledBytes(int64_t bytes) {
  if (bytes <= 0) return;
  spilled_.fetch_add(bytes, std::memory_order_relaxed);
  static MetricCounter* spills_metric =
      MetricsRegistry::Global()->counter("mem.degrade.spills");
  spills_metric->Add();
}

void QueryBudget::SetShrinkHook(std::function<bool()> hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  shrink_hook_ = std::move(hook);
}

bool QueryBudget::RunShrinkHook() {
  std::function<bool()> hook;
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    hook = shrink_hook_;
  }
  if (!hook) return false;
  const bool shrank = hook();
  if (shrank) shrinks_metric_->Add();
  return shrank;
}

int64_t QueryBudget::TotalChargedBytes() {
  return g_total_charged.load(std::memory_order_relaxed);
}

}  // namespace claims
