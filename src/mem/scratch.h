#ifndef CLAIMS_MEM_SCRATCH_H_
#define CLAIMS_MEM_SCRATCH_H_

#include <cstddef>

#include "common/macros.h"
#include "mem/block_pool.h"

namespace claims {

/// RAII scratch array for operator inner loops (group-row staging, hash
/// vectors, argument columns). Pool-backed when a pool is given — per-block
/// scratch is exactly the churn a recycling pool exists for — with a plain
/// new[] fallback so operators built without a pool behave as before.
///
/// Non-strict and unbudgeted on purpose: scratch is transient (lives for one
/// block) and bounded by the block size, so it is not charged against the
/// query ledger — only *state* (arenas, buffered blocks) binds the budget;
/// see docs/MEMORY.md. T must be trivially destructible; contents start
/// uninitialized (recycled chunks keep old bytes).
template <typename T>
class Scratch {
 public:
  Scratch(BlockPool* pool, size_t count) : pool_(pool) {
    const size_t bytes = count * sizeof(T);
    if (pool_ != nullptr) {
      alloc_ = pool_->Allocate(bytes);
    } else {
      alloc_.data = new char[bytes];
      alloc_.bytes = bytes;
    }
  }
  ~Scratch() {
    if (pool_ != nullptr) {
      pool_->Release(alloc_);
    } else {
      delete[] alloc_.data;
    }
  }
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(Scratch);

  T* data() { return reinterpret_cast<T*>(alloc_.data); }
  const T* data() const { return reinterpret_cast<const T*>(alloc_.data); }
  T& operator[](size_t i) { return data()[i]; }

 private:
  BlockPool* pool_;
  PoolAlloc alloc_;
};

}  // namespace claims

#endif  // CLAIMS_MEM_SCRATCH_H_
