#include "mem/spill.h"

#include "obs/metrics_registry.h"

namespace claims {

namespace {
MetricCounter* RunsMetric() {
  static MetricCounter* m = MetricsRegistry::Global()->counter("mem.spill.runs");
  return m;
}
MetricCounter* WrittenMetric() {
  static MetricCounter* m =
      MetricsRegistry::Global()->counter("mem.spill.bytes_written");
  return m;
}
MetricCounter* ReadMetric() {
  static MetricCounter* m =
      MetricsRegistry::Global()->counter("mem.spill.bytes_read");
  return m;
}
}  // namespace

std::unique_ptr<SpillRun> SpillRun::Create() {
  std::FILE* file = std::tmpfile();
  if (file == nullptr) return nullptr;
  RunsMetric()->Add();
  return std::unique_ptr<SpillRun>(new SpillRun(file));
}

SpillRun::~SpillRun() {
  if (file_ != nullptr) std::fclose(file_);
}

Status SpillRun::Append(const void* data, size_t bytes) {
  if (finished_) return Status::Internal("spill run already finished");
  if (bytes == 0) return Status::OK();
  if (std::fwrite(data, 1, bytes, file_) != bytes) {
    return Status::Internal("spill run short write");
  }
  bytes_ += static_cast<int64_t>(bytes);
  WrittenMetric()->Add(static_cast<int64_t>(bytes));
  return Status::OK();
}

Status SpillRun::Finish() {
  if (finished_) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::Internal("spill run flush failed");
  }
  finished_ = true;
  return Status::OK();
}

Status SpillRun::ReadAll(std::vector<char>* out) const {
  if (!finished_) return Status::Internal("spill run read before Finish");
  out->resize(static_cast<size_t>(bytes_));
  if (bytes_ == 0) return Status::OK();
  std::rewind(file_);
  if (std::fread(out->data(), 1, out->size(), file_) != out->size()) {
    return Status::Internal("spill run short read");
  }
  ReadMetric()->Add(bytes_);
  return Status::OK();
}

}  // namespace claims
