#ifndef CLAIMS_WLM_QUERY_SERVICE_H_
#define CLAIMS_WLM_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cluster/executor.h"
#include "wlm/admission.h"

namespace claims {

class QueryService;

/// Lifecycle of a submitted query:
///   kQueued   — waiting for admission (or for a worker);
///   kRunning  — an Executor is executing it on the cluster;
///   kRetrying — the last attempt failed kUnavailable (node loss, exhausted
///               send retries); the service is backing off before
///               re-dispatching onto the surviving nodes;
///   kDone     — finished; status()/result()/report() are valid.
enum class QueryState { kQueued, kRunning, kRetrying, kDone };

const char* QueryStateName(QueryState state);

/// Query-level retry on transient infrastructure failure. Only
/// StatusCode::kUnavailable is retryable — cancellation, deadlines, and
/// logic errors never re-run. Attempts are capped at 8 regardless of the
/// configured value; the query's deadline keeps counting across attempts.
struct RetryPolicy {
  /// Total attempts including the first; 1 disables retry.
  int max_attempts = 1;
  int64_t initial_backoff_ns = 10'000'000;  // 10 ms
  double backoff_multiplier = 2.0;
};

/// Per-submission options layered on top of the executor's.
struct SubmitOptions {
  /// Execution options for the query. The service overrides the concurrency
  /// plumbing fields (exchange_id_base, exclusive_cluster, queue_wait_ns,
  /// deadline_ns); everything else passes through.
  ExecOptions exec;
  /// Higher runs first. Equal priorities dispatch in submission order.
  int priority = 0;
  /// Client-visible deadline relative to submission, queue wait included;
  /// 0 = none. Expiry surfaces as kDeadlineExceeded whether the query was
  /// still queued or already running.
  int64_t timeout_ns = 0;
  /// Re-dispatch policy for kUnavailable failures.
  RetryPolicy retry;
  /// Shown in traces and reports; defaults to "q<id>".
  std::string label;
};

/// Client-side view of one submitted query. Thread-safe; shared between the
/// submitter, the service's dispatch workers, and anyone calling Cancel().
class QueryHandle {
 public:
  uint64_t id() const { return id_; }
  const std::string& label() const { return label_; }
  int priority() const { return options_.priority; }

  QueryState state() const;

  /// Blocks until the query reaches kDone.
  void Wait();
  /// Bounded wait; false on timeout.
  bool WaitFor(int64_t timeout_ns);

  /// Cooperative cancellation from any thread. A queued query completes
  /// immediately with kCancelled (it never runs); a running query aborts at
  /// its segments' next block boundaries; a done query is unaffected.
  void Cancel();

  // --- Valid once state() == kDone -----------------------------------------

  const Status& status() const;
  /// The gathered result; empty unless status().ok().
  const ResultSet& result() const;
  /// The executor's EXPLAIN-ANALYZE report (queue_wait_ns filled in); empty
  /// for queries that never ran.
  const ExecutionReport& report() const;

  /// Admission delay: submission → dispatch (or → completion for queries
  /// that never ran).
  int64_t queue_wait_ns() const;
  /// Client-visible latency: submission → done.
  int64_t latency_ns() const;

  // --- Live introspection (valid in any state; sampled by /queries) --------

  int64_t submit_ns() const { return submit_ns_; }
  /// Absolute SteadyClock deadline (submit + timeout); 0 when none.
  int64_t deadline_ns() const {
    return options_.timeout_ns > 0 ? submit_ns_ + options_.timeout_ns : 0;
  }
  /// Execution progress; all-zero before dispatch / for unrun queries.
  ExecProgress progress() const;

 private:
  friend class QueryService;

  QueryHandle(uint64_t id, PhysicalPlan plan, SubmitOptions options,
              int64_t submit_ns);

  /// Transition to kDone (exactly once) and wake waiters.
  void Complete(Status status, ResultSet result, ExecutionReport report,
                int64_t done_ns);

  const uint64_t id_;
  const PhysicalPlan plan_;
  const SubmitOptions options_;
  const std::string label_;
  const int64_t submit_ns_;
  QueryDemand demand_;
  /// Booked by the dispatching worker's TryAdmit; released (with the actual
  /// peak, for estimate-error accounting) when the run completes. Only the
  /// owning dispatch worker touches it after admission.
  AdmissionReservation reservation_;

  mutable std::mutex mu_;
  std::condition_variable done_cv_;
  QueryState state_ = QueryState::kQueued;
  bool cancel_requested_ = false;
  /// Exists from dispatch until the handle dies, so Cancel() can reach a
  /// running execution without racing its teardown.
  std::unique_ptr<Executor> executor_;
  Status status_;
  ResultSet result_;
  ExecutionReport report_;
  int64_t dispatch_ns_ = 0;
  int64_t done_ns_ = 0;
};

using QueryHandlePtr = std::shared_ptr<QueryHandle>;

struct QueryServiceOptions {
  AdmissionOptions admission;
  /// Dispatch worker threads = max queries executing at once; 0 derives it
  /// from admission.max_concurrent (and that from the cluster if also 0).
  int workers = 0;
  /// Submissions beyond this many queued queries block the submitter until
  /// the queue drains (backpressure, not rejection); 0 = unbounded.
  size_t max_queue_depth = 0;
};

/// One row of the live query inventory served at /queries. Everything is a
/// point-in-time sample: a query can finish between ListQueries and use.
struct QueryInfo {
  uint64_t id = 0;
  std::string label;
  QueryState state = QueryState::kQueued;
  int priority = 0;
  int64_t submit_ns = 0;
  int64_t queue_wait_ns = 0;  ///< so-far for queued, final once dispatched
  int64_t run_ns = 0;         ///< dispatch → now (or → done); 0 while queued
  int64_t deadline_ns = 0;    ///< absolute; 0 = none
  int64_t tuples_emitted = 0;
  int64_t tuples_consumed = 0;
  int live_segments = 0;
  // Memory ledger sample; all 0 for queries running without a budget.
  int64_t mem_charged_bytes = 0;
  int64_t mem_budget_bytes = 0;
  int64_t mem_spilled_bytes = 0;
  std::string status;  ///< terminal status string; empty until kDone
};

/// The workload manager in front of the cluster (the subsystem the paper
/// defers to as "multi-query scheduling", §7): accepts prioritized query
/// submissions, gates them through an AdmissionController, and executes the
/// admitted set concurrently — one Executor per query over the shared
/// Cluster, exchange ids namespaced per execution — so each node's
/// DynamicScheduler and the GlobalThroughputBoard arbitrate cores *across*
/// queries exactly as they do across one query's segments.
///
/// Dispatch policy: highest priority first (ties: submission order), with
/// skip-over — if the best queued query does not fit the remaining budget
/// but a smaller one does, the smaller one runs. Skip-over favors
/// utilization over strict ordering; an over-budget query is never starved
/// outright because an idle system admits anything (see
/// AdmissionController).
class QueryService {
 public:
  QueryService(Cluster* cluster, QueryServiceOptions options);
  ~QueryService();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(QueryService);

  /// Submits a planned query. Blocks while the queue is at max_queue_depth.
  /// After Shutdown the returned handle is already kDone with kCancelled.
  QueryHandlePtr Submit(PhysicalPlan plan, SubmitOptions options = {});

  /// Stops accepting submissions. cancel_pending=true also cancels every
  /// queued and running query; false drains them first. Blocks until the
  /// workers exited. Idempotent.
  void Shutdown(bool cancel_pending = true);

  size_t queue_depth() const;
  AdmissionController* admission() { return &admission_; }
  Cluster* cluster() { return cluster_; }

  /// Point-in-time inventory of queued and running queries plus the most
  /// recently completed ones (bounded ring), newest-submission first within
  /// each state. Safe to call from any thread at scrape frequency.
  std::vector<QueryInfo> ListQueries() const;

 private:
  void WorkerMain();
  /// Picks the dispatchable queued query under mu_: reaps cancelled/expired
  /// entries (with the status each should complete with), admits the best
  /// fit into running_. Returns nullptr when none qualifies.
  QueryHandlePtr PopDispatchableLocked(
      int64_t now_ns, std::vector<std::pair<QueryHandlePtr, Status>>* reaped);
  void RunQuery(const QueryHandlePtr& handle);
  /// Completes a query that never ran and records its metrics.
  void CompleteUnrun(const QueryHandlePtr& handle, Status status);
  /// Records terminal metrics and remembers the handle in recent_done_.
  void RecordCompletion(const QueryHandlePtr& handle);

  Cluster* cluster_;
  QueryServiceOptions options_;
  AdmissionController admission_;

  MetricGauge* queue_depth_gauge_;
  MetricCounter* submitted_metric_;
  MetricCounter* completed_metric_;
  MetricCounter* failed_metric_;
  MetricCounter* cancelled_metric_;
  MetricCounter* deadline_metric_;
  MetricCounter* retries_metric_;
  MetricHistogram* queue_wait_metric_;
  MetricHistogram* latency_metric_;

  mutable std::mutex mu_;
  std::condition_variable dispatch_cv_;      ///< workers: work or budget freed
  std::condition_variable backpressure_cv_;  ///< submitters: queue has room
  std::vector<QueryHandlePtr> queue_;
  std::vector<QueryHandlePtr> running_;
  /// Most recent completions, oldest first, for the /queries inventory.
  std::vector<QueryHandlePtr> recent_done_;
  static constexpr size_t kRecentDoneCap = 32;
  bool shutdown_ = false;
  bool cancel_pending_on_shutdown_ = false;
  uint64_t next_id_ = 1;
  std::vector<std::thread> workers_;
};

}  // namespace claims

#endif  // CLAIMS_WLM_QUERY_SERVICE_H_
