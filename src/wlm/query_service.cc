#include "wlm/query_service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/clock.h"
#include "common/string_util.h"
#include "obs/trace.h"

namespace claims {
namespace {

// Workers poll at most this often so queued-query cancellation and deadline
// expiry are noticed even when no dispatch/completion event fires. Handles
// deliberately hold no back-pointer to the service (they may outlive it), so
// a reap can only happen on a worker wakeup.
constexpr int64_t kMaxIdleWaitNs = 20'000'000;  // 20 ms

// Priority descending, then submission order. queue_ stays sorted under this
// so dispatch is a linear first-fit scan.
bool QueueBefore(const QueryHandlePtr& a, const QueryHandlePtr& b) {
  if (a->priority() != b->priority()) return a->priority() > b->priority();
  return a->id() < b->id();
}

}  // namespace

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "QUEUED";
    case QueryState::kRunning:
      return "RUNNING";
    case QueryState::kRetrying:
      return "RETRYING";
    case QueryState::kDone:
      return "DONE";
  }
  return "UNKNOWN";
}

// --- QueryHandle -------------------------------------------------------------

QueryHandle::QueryHandle(uint64_t id, PhysicalPlan plan, SubmitOptions options,
                         int64_t submit_ns)
    : id_(id),
      plan_(std::move(plan)),
      options_(std::move(options)),
      label_(options_.label.empty() ? StrFormat("q%llu",
                                               static_cast<unsigned long long>(
                                                   id))
                                    : options_.label),
      submit_ns_(submit_ns) {}

QueryState QueryHandle::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

void QueryHandle::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return state_ == QueryState::kDone; });
}

bool QueryHandle::WaitFor(int64_t timeout_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  return done_cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                           [this] { return state_ == QueryState::kDone; });
}

void QueryHandle::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == QueryState::kDone) return;
  cancel_requested_ = true;
  // Running: abort the execution directly. Queued: the flag is sticky; a
  // dispatch worker reaps it within its poll interval, and RunQuery re-checks
  // it under mu_ before starting in case admission already happened.
  if (executor_ != nullptr) executor_->Cancel();
}

const Status& QueryHandle::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

const ResultSet& QueryHandle::result() const {
  std::lock_guard<std::mutex> lock(mu_);
  return result_;
}

const ExecutionReport& QueryHandle::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return report_;
}

int64_t QueryHandle::queue_wait_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (dispatch_ns_ > 0) return dispatch_ns_ - submit_ns_;
  if (done_ns_ > 0) return done_ns_ - submit_ns_;  // reaped without running
  return 0;                                        // still queued
}

int64_t QueryHandle::latency_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_ns_ > 0 ? done_ns_ - submit_ns_ : 0;
}

ExecProgress QueryHandle::progress() const {
  Executor* executor = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    executor = executor_.get();
  }
  // executor_ lives from dispatch until the handle dies (see member
  // comment), so the pointer stays valid after mu_ is dropped.
  return executor != nullptr ? executor->Progress() : ExecProgress{};
}

void QueryHandle::Complete(Status status, ResultSet result,
                           ExecutionReport report, int64_t done_ns) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (state_ == QueryState::kDone) return;
    status_ = std::move(status);
    result_ = std::move(result);
    report_ = std::move(report);
    done_ns_ = done_ns;
    state_ = QueryState::kDone;
  }
  done_cv_.notify_all();
}

// --- QueryService ------------------------------------------------------------

QueryService::QueryService(Cluster* cluster, QueryServiceOptions options)
    : cluster_(cluster), options_(options), admission_([&] {
        AdmissionOptions a = options.admission;
        if (a.max_concurrent == 0) {
          a.max_concurrent = cluster->num_nodes() * 2;
        }
        return a;
      }()) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  queue_depth_gauge_ = reg->gauge("wlm.queue_depth");
  submitted_metric_ = reg->counter("wlm.submitted");
  completed_metric_ = reg->counter("wlm.completed");
  failed_metric_ = reg->counter("wlm.failed");
  cancelled_metric_ = reg->counter("wlm.cancelled");
  deadline_metric_ = reg->counter("wlm.deadline_exceeded");
  retries_metric_ = reg->counter("wlm.retries");
  queue_wait_metric_ = reg->histogram("wlm.queue_wait_ns");
  latency_metric_ = reg->histogram("wlm.latency_ns");

  // Schedulers run for the service's whole lifetime (refcounted): queries
  // come and go, the per-node arbitration loop persists across them.
  cluster_->StartSchedulers();

  int workers = options_.workers;
  if (workers <= 0) workers = std::max(1, admission_.options().max_concurrent);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

QueryService::~QueryService() {
  Shutdown(/*cancel_pending=*/true);
  cluster_->StopSchedulers();
}

QueryHandlePtr QueryService::Submit(PhysicalPlan plan, SubmitOptions options) {
  const int64_t submit_ns = SteadyClock::Default()->NowNanos();
  std::unique_lock<std::mutex> lock(mu_);
  // Backpressure: block the submitter (open-loop driver, client thread)
  // instead of rejecting — the paper's cluster never sheds queries, it
  // delays them.
  backpressure_cv_.wait(lock, [this] {
    return shutdown_ || options_.max_queue_depth == 0 ||
           queue_.size() < options_.max_queue_depth;
  });
  const uint64_t id = next_id_++;
  QueryHandlePtr handle(
      new QueryHandle(id, std::move(plan), std::move(options), submit_ns));
  handle->demand_ = EstimateDemand(handle->plan_, handle->options_.exec);
  submitted_metric_->Add();
  if (shutdown_) {
    lock.unlock();
    CompleteUnrun(handle, Status::Cancelled("query service is shut down"));
    return handle;
  }
  queue_.insert(std::upper_bound(queue_.begin(), queue_.end(), handle,
                                 QueueBefore),
                handle);
  queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  lock.unlock();
  dispatch_cv_.notify_one();
  return handle;
}

void QueryService::Shutdown(bool cancel_pending) {
  std::vector<QueryHandlePtr> queued;
  std::vector<QueryHandlePtr> running;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    if (cancel_pending) {
      cancel_pending_on_shutdown_ = true;
      queued.swap(queue_);
      running = running_;
      queue_depth_gauge_->Set(0);
    }
  }
  dispatch_cv_.notify_all();
  backpressure_cv_.notify_all();
  for (const QueryHandlePtr& h : running) h->Cancel();
  for (const QueryHandlePtr& h : queued) {
    CompleteUnrun(h, Status::Cancelled("query service is shut down"));
  }
  std::vector<std::thread> workers;
  {
    // Exactly one caller joins; Shutdown is idempotent and may race the
    // destructor.
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (std::thread& t : workers) t.join();
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::vector<QueryInfo> QueryService::ListQueries() const {
  const int64_t now = SteadyClock::Default()->NowNanos();
  std::vector<QueryHandlePtr> handles;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handles.reserve(running_.size() + queue_.size() + recent_done_.size());
    handles.insert(handles.end(), running_.begin(), running_.end());
    handles.insert(handles.end(), queue_.begin(), queue_.end());
    // Newest completion first.
    handles.insert(handles.end(), recent_done_.rbegin(), recent_done_.rend());
  }
  std::vector<QueryInfo> out;
  out.reserve(handles.size());
  for (const QueryHandlePtr& h : handles) {
    QueryInfo info;
    info.id = h->id_;
    info.label = h->label_;
    info.priority = h->priority();
    info.submit_ns = h->submit_ns_;
    info.deadline_ns = h->deadline_ns();
    Executor* executor = nullptr;
    {
      std::lock_guard<std::mutex> hl(h->mu_);
      info.state = h->state_;
      if (h->dispatch_ns_ > 0) {
        info.queue_wait_ns = h->dispatch_ns_ - h->submit_ns_;
        info.run_ns =
            (h->done_ns_ > 0 ? h->done_ns_ : now) - h->dispatch_ns_;
      } else {
        // Still queued, or reaped without running.
        info.queue_wait_ns =
            (h->done_ns_ > 0 ? h->done_ns_ : now) - h->submit_ns_;
      }
      if (h->state_ == QueryState::kDone) info.status = h->status_.ToString();
      executor = h->executor_.get();
    }
    if (executor != nullptr) {
      // Safe after dropping handle mu_: executor_ lives until the handle
      // dies, and we hold the shared_ptr.
      ExecProgress p = executor->Progress();
      info.tuples_emitted = p.tuples_emitted;
      info.tuples_consumed = p.tuples_consumed;
      info.live_segments = p.live_segments;
      info.mem_charged_bytes = p.mem_charged_bytes;
      info.mem_budget_bytes = p.mem_budget_bytes;
      info.mem_spilled_bytes = p.mem_spilled_bytes;
    }
    out.push_back(std::move(info));
  }
  return out;
}

void QueryService::WorkerMain() {
  for (;;) {
    QueryHandlePtr next;
    std::vector<std::pair<QueryHandlePtr, Status>> reaped;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        const int64_t now = SteadyClock::Default()->NowNanos();
        next = PopDispatchableLocked(now, &reaped);
        if (next != nullptr || !reaped.empty()) break;
        if (shutdown_ && queue_.empty()) return;
        // Bounded wait so queued-side cancellation/deadlines are reaped
        // promptly; shorter when a queued deadline lands sooner.
        int64_t wait_ns = kMaxIdleWaitNs;
        for (const QueryHandlePtr& h : queue_) {
          if (h->options_.timeout_ns <= 0) continue;
          const int64_t remaining =
              h->submit_ns_ + h->options_.timeout_ns - now;
          wait_ns = std::max<int64_t>(0, std::min(wait_ns, remaining));
        }
        dispatch_cv_.wait_for(lock, std::chrono::nanoseconds(wait_ns));
      }
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    backpressure_cv_.notify_all();
    for (auto& [handle, status] : reaped) {
      CompleteUnrun(handle, std::move(status));
    }
    if (next != nullptr) RunQuery(next);
  }
}

QueryHandlePtr QueryService::PopDispatchableLocked(
    int64_t now_ns, std::vector<std::pair<QueryHandlePtr, Status>>* reaped) {
  // Reap queued entries that will never run: cancelled, expired, or doomed
  // by a cancelling shutdown. Lock order service mu_ → handle mu_ (the
  // cancel-flag peek) matches QueryHandle::Cancel, which takes only handle
  // mu_.
  for (auto it = queue_.begin(); it != queue_.end();) {
    QueryHandle& h = **it;
    bool cancelled;
    {
      std::lock_guard<std::mutex> hl(h.mu_);
      cancelled = h.cancel_requested_;
    }
    const bool expired = h.options_.timeout_ns > 0 &&
                         now_ns - h.submit_ns_ >= h.options_.timeout_ns;
    if (cancelled || cancel_pending_on_shutdown_) {
      reaped->emplace_back(*it, Status::Cancelled("cancelled while queued"));
      it = queue_.erase(it);
    } else if (expired) {
      reaped->emplace_back(
          *it, Status::DeadlineExceeded("deadline expired while queued"));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  // First fit in (priority, submission) order — see the class comment for
  // the skip-over rationale.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (!admission_.TryAdmit((*it)->demand_, &(*it)->reservation_)) continue;
    QueryHandlePtr handle = *it;
    queue_.erase(it);
    running_.push_back(handle);
    return handle;
  }
  return nullptr;
}

void QueryService::RunQuery(const QueryHandlePtr& handle) {
  Clock* clock = SteadyClock::Default();
  const int64_t dispatch_ns = clock->NowNanos();
  const int64_t queue_wait_ns = dispatch_ns - handle->submit_ns_;
  {
    std::lock_guard<std::mutex> lock(handle->mu_);
    handle->dispatch_ns_ = dispatch_ns;
  }

  const int max_attempts =
      std::clamp(handle->options_.retry.max_attempts, 1, 8);
  int64_t backoff_ns =
      std::max<int64_t>(1, handle->options_.retry.initial_backoff_ns);
  const int64_t deadline_ns =
      handle->options_.timeout_ns > 0
          ? handle->submit_ns_ + handle->options_.timeout_ns
          : 0;

  Status status;
  ResultSet result;
  ExecutionReport report;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Fresh Executor per attempt (an executor is one-shot: cancellation and
    // node-loss latches are sticky), installed under handle mu_ so Cancel()
    // always reaches the attempt in flight.
    Executor* executor = nullptr;
    {
      std::lock_guard<std::mutex> lock(handle->mu_);
      if (!handle->cancel_requested_) {
        handle->executor_ = std::make_unique<Executor>(cluster_);
        handle->state_ = QueryState::kRunning;
        executor = handle->executor_.get();
      }
    }
    if (executor == nullptr) {
      // Cancelled between admission and dispatch (or during backoff).
      status = Status::Cancelled("cancelled before dispatch");
      break;
    }
    ExecOptions exec = handle->options_.exec;
    exec.exclusive_cluster = false;
    exec.queue_wait_ns = queue_wait_ns;
    // With a cluster memory budget configured, the admitted reservation
    // becomes the query's *binding* ledger: the executor charges actual
    // arena/buffer bytes against it and degrades (shrink → spill → reject)
    // instead of silently overshooting the estimate. An explicit per-query
    // budget in the submit options wins; without an admission memory budget
    // nothing changes.
    if (exec.memory_budget_bytes == 0 &&
        admission_.options().memory_budget_bytes > 0) {
      exec.memory_budget_bytes = handle->reservation_.memory_bytes;
    }
    // Profile under the handle's id so GET /profile/<id> lines up with
    // /queries; a retry re-stores under the same id (latest attempt wins).
    exec.query_id = handle->id_;
    // Disjoint exchange-id namespace per (query, attempt): a retried query
    // restarts idempotently in fresh channels — nothing a dead attempt left
    // in the fabric can leak into the re-dispatch. Ids recycle after 1M
    // in-flight-distinct attempts, far beyond any overlap window.
    exec.exchange_id_base = static_cast<int>(
        1 + ((handle->id_ * 8 + static_cast<uint64_t>(attempt)) % 1'000'000) *
                1000);
    exec.deadline_ns = deadline_ns;
    Result<ResultSet> r = executor->Execute(handle->plan_, exec);
    if (r.ok()) {
      status = Status::OK();
      result = std::move(r).value();
      // LIMIT applies at the collector (same as Database::Query).
      if (handle->plan_.limit >= 0) result.TruncateRows(handle->plan_.limit);
    } else {
      status = r.status();
    }
    report = executor->report();
    // Only transient infrastructure failure re-dispatches.
    if (status.code() != StatusCode::kUnavailable ||
        attempt + 1 >= max_attempts) {
      break;
    }
    retries_metric_->Add();
    {
      std::lock_guard<std::mutex> lock(handle->mu_);
      if (handle->cancel_requested_) break;
      handle->state_ = QueryState::kRetrying;
    }
    // Backoff in cancellation-responsive chunks; give up re-dispatching if
    // the query's own deadline lands first.
    int64_t remaining = backoff_ns;
    bool aborted = false;
    while (remaining > 0) {
      if (deadline_ns > 0 && clock->NowNanos() >= deadline_ns) {
        status = Status::DeadlineExceeded("deadline expired while retrying");
        aborted = true;
        break;
      }
      {
        std::lock_guard<std::mutex> lock(handle->mu_);
        if (handle->cancel_requested_) {
          status = Status::Cancelled("cancelled while retrying");
          aborted = true;
          break;
        }
      }
      const int64_t chunk = std::min<int64_t>(remaining, 5'000'000);
      clock->SleepNanos(chunk);
      remaining -= chunk;
    }
    if (aborted) break;
    backoff_ns = static_cast<int64_t>(
        backoff_ns * std::max(1.0, handle->options_.retry.backoff_multiplier));
  }

  const int64_t done_ns = clock->NowNanos();
  TraceCollector* tc = TraceCollector::Global();
  if (tc->enabled() && queue_wait_ns > 0) {
    tc->Complete(handle->submit_ns_, queue_wait_ns, /*pid=*/0, "wlm",
                 StrFormat("queued %s", handle->label_.c_str()),
                 {{"priority", static_cast<double>(handle->priority())}});
  }
  // Release BEFORE waking waiters: a handle that reports done must imply
  // its admission reservation is already back in the pool, so a caller that
  // Wait()s on the last handle observes running() == 0. Releasing through
  // the receipt returns exactly what admission booked; the actual peak feeds
  // the wlm.mem_estimate_error histogram (ledger peak when the query ran
  // with a budget — truly per-query — else the tracker's high-watermark).
  int64_t actual_peak_bytes = -1;
  {
    std::lock_guard<std::mutex> lock(handle->mu_);
    if (handle->executor_ != nullptr) {
      QueryBudget* budget = handle->executor_->budget();
      actual_peak_bytes = budget != nullptr
                              ? budget->peak_charged_bytes()
                              : handle->executor_->stats().peak_memory_bytes;
    }
  }
  admission_.ReleaseWithActual(&handle->reservation_, actual_peak_bytes);
  handle->Complete(std::move(status), std::move(result), std::move(report),
                   done_ns);
  RecordCompletion(handle);
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_.erase(std::remove(running_.begin(), running_.end(), handle),
                   running_.end());
  }
  // Budget freed: every waiting worker may now find a dispatchable query.
  dispatch_cv_.notify_all();
}

void QueryService::CompleteUnrun(const QueryHandlePtr& handle, Status status) {
  handle->Complete(std::move(status), ResultSet(), ExecutionReport(),
                   SteadyClock::Default()->NowNanos());
  RecordCompletion(handle);
}

void QueryService::RecordCompletion(const QueryHandlePtr& handle) {
  switch (handle->status().code()) {
    case StatusCode::kOk:
      completed_metric_->Add();
      break;
    case StatusCode::kCancelled:
      cancelled_metric_->Add();
      break;
    case StatusCode::kDeadlineExceeded:
      deadline_metric_->Add();
      break;
    default:
      failed_metric_->Add();
      break;
  }
  queue_wait_metric_->Record(handle->queue_wait_ns());
  latency_metric_->Record(handle->latency_ns());
  std::lock_guard<std::mutex> lock(mu_);
  recent_done_.push_back(handle);
  if (recent_done_.size() > kRecentDoneCap) {
    recent_done_.erase(recent_done_.begin());
  }
}

}  // namespace claims
