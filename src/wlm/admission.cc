#include "wlm/admission.h"

#include <algorithm>

#include "storage/block.h"

namespace claims {

QueryDemand EstimateDemand(const PhysicalPlan& plan, const ExecOptions& exec) {
  QueryDemand demand;
  demand.cores = 0;
  for (const auto& f : plan.fragments) {
    int per_instance = std::max(
        1, exec.parallelism > 0 ? exec.parallelism : f->initial_parallelism);
    int instances = static_cast<int>(f->nodes.size());
    demand.cores += per_instance * instances;
    demand.memory_bytes += static_cast<int64_t>(instances) *
                           static_cast<int64_t>(exec.buffer_capacity_blocks) *
                           kDefaultBlockBytes;
  }
  demand.cores = std::max(1, demand.cores);
  return demand;
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  running_gauge_ = reg->gauge("wlm.running");
  cores_gauge_ = reg->gauge("wlm.cores_in_flight");
  memory_gauge_ = reg->gauge("wlm.memory_in_flight");
  admitted_metric_ = reg->counter("wlm.admitted");
}

namespace {

/// The ledger clamps each reservation at the budget: an oversized query
/// admitted into an idle system books the whole budget (excluding everyone
/// else while it runs) rather than breaking the `in-flight <= budget`
/// invariant the rest of the system monitors. Release applies the same
/// clamp, so the books balance.
int64_t Clamped(int64_t demand, int64_t budget) {
  return budget > 0 ? std::min(demand, budget) : demand;
}

}  // namespace

bool AdmissionController::TryAdmit(const QueryDemand& demand) {
  std::lock_guard<std::mutex> lock(mu_);
  // An idle system admits anything: a query bigger than a budget must not
  // starve, it simply runs alone.
  if (running_ > 0) {
    if (options_.max_concurrent > 0 && running_ >= options_.max_concurrent) {
      return false;
    }
    if (options_.core_budget > 0 &&
        cores_ + demand.cores > options_.core_budget) {
      return false;
    }
    if (options_.memory_budget_bytes > 0 &&
        memory_ + demand.memory_bytes > options_.memory_budget_bytes) {
      return false;
    }
  }
  ++running_;
  cores_ += static_cast<int>(Clamped(demand.cores, options_.core_budget));
  memory_ += Clamped(demand.memory_bytes, options_.memory_budget_bytes);
  running_gauge_->Set(running_);
  cores_gauge_->Set(cores_);
  memory_gauge_->Set(static_cast<double>(memory_));
  admitted_metric_->Add();
  return true;
}

void AdmissionController::Release(const QueryDemand& demand) {
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  cores_ -= static_cast<int>(Clamped(demand.cores, options_.core_budget));
  memory_ -= Clamped(demand.memory_bytes, options_.memory_budget_bytes);
  running_gauge_->Set(running_);
  cores_gauge_->Set(cores_);
  memory_gauge_->Set(static_cast<double>(memory_));
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionController::cores_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cores_;
}

int64_t AdmissionController::memory_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_;
}

}  // namespace claims
