#include "wlm/admission.h"

#include <algorithm>
#include <cstdlib>

#include "storage/block.h"

namespace claims {

QueryDemand EstimateDemand(const PhysicalPlan& plan, const ExecOptions& exec) {
  QueryDemand demand;
  demand.cores = 0;
  for (const auto& f : plan.fragments) {
    int per_instance = std::max(
        1, exec.parallelism > 0 ? exec.parallelism : f->initial_parallelism);
    int instances = static_cast<int>(f->nodes.size());
    demand.cores += per_instance * instances;
    demand.memory_bytes += static_cast<int64_t>(instances) *
                           static_cast<int64_t>(exec.buffer_capacity_blocks) *
                           kDefaultBlockBytes;
  }
  demand.cores = std::max(1, demand.cores);
  return demand;
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  running_gauge_ = reg->gauge("wlm.running");
  cores_gauge_ = reg->gauge("wlm.cores_in_flight");
  memory_gauge_ = reg->gauge("wlm.memory_in_flight");
  admitted_metric_ = reg->counter("wlm.admitted");
  estimate_error_metric_ = reg->histogram("wlm.mem_estimate_error");
}

namespace {

/// The ledger clamps each reservation at the budget: an oversized query
/// admitted into an idle system books the whole budget (excluding everyone
/// else while it runs) rather than breaking the `in-flight <= budget`
/// invariant the rest of the system monitors. Release applies the same
/// clamp, so the books balance.
int64_t Clamped(int64_t demand, int64_t budget) {
  return budget > 0 ? std::min(demand, budget) : demand;
}

}  // namespace

bool AdmissionController::TryAdmit(const QueryDemand& demand,
                                   AdmissionReservation* reservation) {
  std::lock_guard<std::mutex> lock(mu_);
  // An idle system admits anything: a query bigger than a budget must not
  // starve, it simply runs alone.
  if (running_ > 0) {
    if (options_.max_concurrent > 0 && running_ >= options_.max_concurrent) {
      return false;
    }
    if (options_.core_budget > 0 &&
        cores_ + demand.cores > options_.core_budget) {
      return false;
    }
    if (options_.memory_budget_bytes > 0 &&
        memory_ + demand.memory_bytes > options_.memory_budget_bytes) {
      return false;
    }
  }
  const int booked_cores =
      static_cast<int>(Clamped(demand.cores, options_.core_budget));
  const int64_t booked_memory =
      Clamped(demand.memory_bytes, options_.memory_budget_bytes);
  ++running_;
  cores_ += booked_cores;
  memory_ += booked_memory;
  running_gauge_->Set(running_);
  cores_gauge_->Set(cores_);
  memory_gauge_->Set(static_cast<double>(memory_));
  admitted_metric_->Add();
  if (reservation != nullptr) {
    reservation->cores = booked_cores;
    reservation->memory_bytes = booked_memory;
    reservation->estimate_bytes = demand.memory_bytes;
    reservation->active = true;
  }
  return true;
}

bool AdmissionController::TryAdmit(const QueryDemand& demand) {
  return TryAdmit(demand, nullptr);
}

void AdmissionController::ReleaseBookedLocked(int cores,
                                              int64_t memory_bytes) {
  --running_;
  cores_ -= cores;
  memory_ -= memory_bytes;
  running_gauge_->Set(running_);
  cores_gauge_->Set(cores_);
  memory_gauge_->Set(static_cast<double>(memory_));
}

void AdmissionController::Release(AdmissionReservation* reservation) {
  if (reservation == nullptr || !reservation->active) return;
  reservation->active = false;
  std::lock_guard<std::mutex> lock(mu_);
  // Release exactly what TryAdmit booked. Re-deriving the clamp from the
  // demand here would skew the books whenever a budget changed between
  // admit and release (or the clamp diverged from the estimate).
  ReleaseBookedLocked(reservation->cores, reservation->memory_bytes);
}

void AdmissionController::ReleaseWithActual(AdmissionReservation* reservation,
                                            int64_t actual_peak_bytes) {
  if (reservation != nullptr && reservation->active &&
      actual_peak_bytes >= 0) {
    estimate_error_metric_->Record(static_cast<double>(
        std::abs(reservation->estimate_bytes - actual_peak_bytes)));
  }
  Release(reservation);
}

void AdmissionController::Release(const QueryDemand& demand) {
  std::lock_guard<std::mutex> lock(mu_);
  ReleaseBookedLocked(
      static_cast<int>(Clamped(demand.cores, options_.core_budget)),
      Clamped(demand.memory_bytes, options_.memory_budget_bytes));
}

int AdmissionController::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

int AdmissionController::cores_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cores_;
}

int64_t AdmissionController::memory_in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return memory_;
}

}  // namespace claims
