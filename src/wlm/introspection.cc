#include "wlm/introspection.h"

#include <cstdlib>
#include <utility>

#include "common/clock.h"
#include "common/string_util.h"
#include "fault/injector.h"
#include "obs/profile/profiler.h"
#include "obs/trace.h"

namespace claims {
namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  AppendJsonEscaped(out, s);
  out->push_back('"');
}

/// JSON has no Infinity/NaN; the snapshots pre-sanitize λ to -1, this guards
/// everything else.
std::string JsonNumber(double v) {
  if (v != v || v > 1e300 || v < -1e300) return "-1";
  return StrFormat("%.6g", v);
}

}  // namespace

IntrospectionOptions IntrospectionOptions::FromEnv(IntrospectionOptions base) {
  base.monitor = MonitorOptions::FromEnv(base.monitor);
  const char* ring = std::getenv("CLAIMS_TRACE_RING");
  if (ring != nullptr && ring[0] != '\0') {
    base.flight_recorder_capacity =
        static_cast<size_t>(std::atoll(ring));
  }
  const char* wd = std::getenv("CLAIMS_WATCHDOG");
  if (wd != nullptr && wd[0] != '\0' && wd[0] != '0') {
    base.enable_watchdog = true;
  }
  const char* ts = std::getenv("CLAIMS_TS_PERIOD_MS");
  if (ts != nullptr && ts[0] != '\0') {
    base.enable_timeseries = true;
    base.timeseries = TimeseriesOptions::FromEnv(base.timeseries);
  }
  return base;
}

IntrospectionPlane::IntrospectionPlane(QueryService* service,
                                       IntrospectionOptions options)
    : service_(service),
      options_(std::move(options)),
      monitor_(options_.monitor),
      watchdog_(options_.watchdog),
      sampler_(options_.timeseries) {
  RegisterRoutes();
  RegisterProbes();
}

IntrospectionPlane::~IntrospectionPlane() { Stop(); }

Status IntrospectionPlane::Start() {
  if (options_.flight_recorder_capacity > 0) {
    TraceCollector* tc = TraceCollector::Global();
    tc->ConfigureFlightRecorder(options_.flight_recorder_capacity);
    tc->Enable();
  }
  CLAIMS_RETURN_IF_ERROR(monitor_.Start());
  if (options_.enable_watchdog) watchdog_.Start();
  if (options_.enable_timeseries) {
    MetricSampler::SetDefault(&sampler_);
    sampler_.Start();
  }
  return Status::OK();
}

void IntrospectionPlane::Stop() {
  if (MetricSampler::Default() == &sampler_) MetricSampler::SetDefault(nullptr);
  sampler_.Stop();
  watchdog_.Stop();
  monitor_.Stop();
}

void IntrospectionPlane::RegisterRoutes() {
  monitor_.AddHandler("GET", "/queries", [this](const HttpRequest&) {
    return HttpResponse::Json(QueriesJson());
  });
  monitor_.AddHandler("GET", "/scheduler", [this](const HttpRequest&) {
    return HttpResponse::Json(SchedulerJson());
  });
  monitor_.AddHandler("GET", "/faults", [this](const HttpRequest&) {
    return HttpResponse::Json(FaultsJson());
  });
}

void IntrospectionPlane::AttachFaultInjector(FaultInjector* injector) {
  injector_.store(injector, std::memory_order_release);
}

void IntrospectionPlane::RegisterProbes() {
  // Tuples-emitted progress over the running set. The value folds in the
  // running query ids so it moves whenever the *set* changes; it pins only
  // when the same queries sit there emitting nothing — the stall.
  watchdog_.AddProgressProbe("wlm.query_progress", [this]() -> int64_t {
    int64_t value = 0;
    bool any_running = false;
    for (const QueryInfo& q : service_->ListQueries()) {
      if (q.state != QueryState::kRunning) continue;
      any_running = true;
      value += q.tuples_emitted + 31 * static_cast<int64_t>(q.id);
    }
    return any_running ? value : StallWatchdog::kInactive;
  });

  // Scheduler-tick progress per node, active only while queries run (the
  // control loops tick for the service's whole lifetime, but an operator
  // stopping them between workloads is not an anomaly worth paging on).
  Cluster* cluster = service_->cluster();
  for (int node = 0; node < cluster->num_nodes(); ++node) {
    DynamicScheduler* sched = cluster->scheduler(node);
    watchdog_.AddProgressProbe(
        StrFormat("scheduler.node%d.ticks", node), [this, sched]() -> int64_t {
          if (service_->admission()->running() == 0) {
            return StallWatchdog::kInactive;
          }
          return sched->tick_count();
        });
  }

  // Deadline breach: a query still RUNNING a full stall-window past its
  // absolute deadline means cooperative cancellation wedged somewhere.
  const int64_t grace_ns = options_.watchdog.stall_window_ns;
  watchdog_.AddConditionProbe("wlm.deadline_breach", [this, grace_ns]() {
    const int64_t now = SteadyClock::Default()->NowNanos();
    for (const QueryInfo& q : service_->ListQueries()) {
      if ((q.state != QueryState::kRunning &&
           q.state != QueryState::kRetrying) ||
          q.deadline_ns <= 0) {
        continue;
      }
      if (now - q.deadline_ns > grace_ns) {
        return StrFormat(
            "query %llu (%s) is %.2f s past its deadline and still running",
            static_cast<unsigned long long>(q.id), q.label.c_str(),
            (now - q.deadline_ns) / 1e9);
      }
    }
    return std::string();
  });

  // Incident context: when a stall fires under chaos, the report should say
  // which faults were in force — a wedged pipeline under an armed injector
  // is usually the injector doing its job, not a product bug.
  watchdog_.AddContextProvider("fault.active", [this]() {
    FaultInjector* injector = injector_.load(std::memory_order_acquire);
    if (injector == nullptr) return std::string();
    return injector->DescribeActiveFaults();
  });

  // Incident context: the causal profiler's open spans say what every wedged
  // segment was blocked on at the moment the stall fired — starved on which
  // exchange, backpressured into which buffer. Empty when the profiler is
  // disarmed or nothing is mid-wait.
  watchdog_.AddContextProvider("profiler.open_spans", []() {
    return QueryProfiler::Global()->OpenSpansText();
  });

  // Incident context: the last two minutes of every metric series, so ANY
  // incident — stall or anomaly — ships with the trajectory that led to it,
  // not just the instantaneous snapshot.
  watchdog_.AddContextProvider("timeseries.window", [this]() {
    if (sampler_.sample_count() == 0) return std::string();
    return sampler_.ToText("", 120'000'000'000);
  });

  // A sustained metric deviation (throughput collapse, p99 spike, queue
  // growth) becomes a first-class incident: flight-recorder dump + every
  // context provider above + the deviant series' own window, under the
  // watchdog's per-source cooldown. Runs on the sampler thread with no
  // sampler lock held (ToText re-locks safely).
  sampler_.SetIncidentCallback([this](const AnomalyIncident& incident) {
    std::string detail = incident.description;
    detail += "\n\n--- deviant series window ---\n";
    detail += sampler_.ToText(incident.series, 0);
    watchdog_.ReportIncident("timeseries." + incident.series, detail);
  });
}

std::string IntrospectionPlane::QueriesJson() const {
  const int64_t now = SteadyClock::Default()->NowNanos();
  AdmissionController* adm = service_->admission();
  std::string out = StrFormat(
      "{\"now_ns\":%lld,\"queue_depth\":%zu,"
      "\"admission\":{\"running\":%d,\"cores_in_flight\":%d,"
      "\"memory_in_flight\":%lld,\"max_concurrent\":%d},"
      "\"queries\":[",
      static_cast<long long>(now), service_->queue_depth(), adm->running(),
      adm->cores_in_flight(), static_cast<long long>(adm->memory_in_flight()),
      adm->options().max_concurrent);
  bool first = true;
  for (const QueryInfo& q : service_->ListQueries()) {
    if (!first) out.push_back(',');
    first = false;
    out += StrFormat("{\"id\":%llu,\"label\":",
                     static_cast<unsigned long long>(q.id));
    AppendJsonString(&out, q.label);
    out += StrFormat(
        ",\"state\":\"%s\",\"priority\":%d,\"submit_ns\":%lld,"
        "\"queue_wait_ns\":%lld,\"run_ns\":%lld,\"deadline_ns\":%lld,"
        "\"tuples_emitted\":%lld,\"tuples_consumed\":%lld,"
        "\"live_segments\":%d,\"mem_charged_bytes\":%lld,"
        "\"mem_budget_bytes\":%lld,\"mem_spilled_bytes\":%lld,\"status\":",
        QueryStateName(q.state), q.priority,
        static_cast<long long>(q.submit_ns),
        static_cast<long long>(q.queue_wait_ns),
        static_cast<long long>(q.run_ns),
        static_cast<long long>(q.deadline_ns),
        static_cast<long long>(q.tuples_emitted),
        static_cast<long long>(q.tuples_consumed), q.live_segments,
        static_cast<long long>(q.mem_charged_bytes),
        static_cast<long long>(q.mem_budget_bytes),
        static_cast<long long>(q.mem_spilled_bytes));
    AppendJsonString(&out, q.status);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

std::string IntrospectionPlane::SchedulerJson() const {
  Cluster* cluster = service_->cluster();
  std::string out = "{\"nodes\":[";
  double global_lambda = -1.0;
  for (int node = 0; node < cluster->num_nodes(); ++node) {
    SchedulerSnapshot snap = cluster->scheduler(node)->Snapshot();
    if (snap.last_global_lambda >= 0) {
      global_lambda = snap.last_global_lambda;
    }
    if (node > 0) out.push_back(',');
    out += StrFormat(
        "{\"node\":%d,\"num_cores\":%d,\"cores_in_use\":%d,\"ticks\":%lld,"
        "\"last_tick_ns\":%lld,\"lambda_local\":%s,\"segments\":[",
        snap.node_id, snap.num_cores, snap.cores_in_use,
        static_cast<long long>(snap.ticks),
        static_cast<long long>(snap.last_tick_ns),
        JsonNumber(snap.last_lambda_local).c_str());
    bool first = true;
    for (const SegmentSnapshot& seg : snap.segments) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":";
      AppendJsonString(&out, seg.name);
      out += StrFormat(
          ",\"active\":%s,\"parallelism\":%d,\"normalized_rate\":%s,"
          "\"rate\":%s,\"blocked_in\":%s,\"blocked_out\":%s,"
          "\"has_sample\":%s}",
          seg.active ? "true" : "false", seg.parallelism,
          JsonNumber(seg.normalized_rate).c_str(),
          JsonNumber(seg.rate).c_str(),
          JsonNumber(seg.blocked_in_fraction).c_str(),
          JsonNumber(seg.blocked_out_fraction).c_str(),
          seg.has_sample ? "true" : "false");
    }
    out += "]}";
  }
  out += StrFormat("],\"global_lambda\":%s}", JsonNumber(global_lambda).c_str());
  return out;
}

std::string IntrospectionPlane::FaultsJson() const {
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  if (injector == nullptr) return "{\"attached\":false}";
  std::string out = StrFormat(
      "{\"attached\":true,\"seed\":%llu,\"elapsed_ns\":%lld,\"plan\":",
      static_cast<unsigned long long>(injector->plan().seed),
      static_cast<long long>(injector->ElapsedNanos()));
  AppendJsonString(&out, injector->plan().ToString());
  out += ",\"active\":";
  AppendJsonString(&out, injector->DescribeActiveFaults());
  out += ",\"events\":";
  AppendJsonString(&out, injector->EventLogText());
  out.push_back('}');
  return out;
}

}  // namespace claims
