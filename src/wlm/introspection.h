#ifndef CLAIMS_WLM_INTROSPECTION_H_
#define CLAIMS_WLM_INTROSPECTION_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "obs/monitor_server.h"
#include "obs/timeseries/timeseries.h"
#include "obs/watchdog.h"
#include "wlm/query_service.h"

namespace claims {

class FaultInjector;

/// Configuration of the whole introspection plane. Like MonitorOptions,
/// everything defaults to OFF: a default-constructed plane starts no server,
/// no watchdog thread, and leaves tracing untouched.
struct IntrospectionOptions {
  MonitorOptions monitor;
  /// Start the stall watchdog alongside the monitor.
  bool enable_watchdog = false;
  WatchdogOptions watchdog;
  /// When > 0: put the global TraceCollector into flight-recorder mode with
  /// this many ring slots and enable it, so /flight-recorder/dump and
  /// watchdog incidents always have a bounded recent-events window.
  size_t flight_recorder_capacity = 0;
  /// Start the metric time-series sampler alongside the monitor and publish
  /// it as MetricSampler::Default — this is what puts data behind
  /// /timeseries and /dash and arms the anomaly watchdog.
  bool enable_timeseries = false;
  TimeseriesOptions timeseries;

  /// Environment overlay:
  ///   CLAIMS_MONITOR_PORT=<port>   enable the monitor (0 = ephemeral)
  ///   CLAIMS_TRACE_RING=<events>   flight-recorder capacity (handled by
  ///                                TraceEnvScope too; here for servers
  ///                                that construct the plane directly)
  ///   CLAIMS_WATCHDOG=1            enable the stall watchdog
  ///   CLAIMS_TS_PERIOD_MS=<ms>     enable the time-series sampler at this
  ///                                cadence
  static IntrospectionOptions FromEnv(IntrospectionOptions base);
  static IntrospectionOptions FromEnv() {
    return FromEnv(IntrospectionOptions());
  }
};

/// Ties the observability primitives to the running system: owns a
/// MonitorServer and a StallWatchdog, registers the workload-manager routes
///
///   GET /queries    live query inventory (QueryService::ListQueries)
///   GET /scheduler  per-node DynamicScheduler snapshots (cores in use,
///                   live segments, parallelism, last λ and R_i)
///
/// and wires the watchdog probes:
///   * scheduler-tick progress per node (active only while queries run —
///     an idle scheduler parks between ticks and must not alarm);
///   * per-query tuples-emitted progress for every running query;
///   * a deadline-breach condition (running past its absolute deadline by
///     more than the stall window means cooperative cancellation wedged).
///
/// This lives in wlm — the top of the dependency stack — precisely so the
/// obs layer needs no knowledge of queries, schedulers, or clusters.
class IntrospectionPlane {
 public:
  IntrospectionPlane(QueryService* service, IntrospectionOptions options);
  ~IntrospectionPlane();

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(IntrospectionPlane);

  /// Starts whatever the options enable. Idempotent per component; a fully
  /// disabled plane is a no-op returning OK.
  Status Start();
  /// Stops watchdog then monitor. Idempotent; the destructor calls it.
  void Stop();

  MonitorServer* monitor() { return &monitor_; }
  StallWatchdog* watchdog() { return &watchdog_; }
  MetricSampler* sampler() { return &sampler_; }

  /// Surfaces an armed chaos plane: adds GET /faults (planned schedule,
  /// active faults, event log so far) and a watchdog context provider so
  /// incident reports record whether — and which — faults were live when a
  /// stall fired. Pass nullptr to detach. The injector must outlive the
  /// plane or the next AttachFaultInjector(nullptr).
  void AttachFaultInjector(FaultInjector* injector);

  /// JSON bodies of the registered routes (exposed for tests; the HTTP
  /// handlers return exactly these strings).
  std::string QueriesJson() const;
  std::string SchedulerJson() const;
  std::string FaultsJson() const;

 private:
  void RegisterRoutes();
  void RegisterProbes();

  QueryService* service_;
  IntrospectionOptions options_;
  MonitorServer monitor_;
  StallWatchdog watchdog_;
  MetricSampler sampler_;
  std::atomic<FaultInjector*> injector_{nullptr};
};

}  // namespace claims

#endif  // CLAIMS_WLM_INTROSPECTION_H_
