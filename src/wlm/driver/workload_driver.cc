#include "wlm/driver/workload_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/string_util.h"
#include "obs/metrics_registry.h"
#include "obs/timeseries/timeseries.h"

namespace claims {
namespace {

/// Exact order statistic: value at rank ceil(p * n) of the sorted sample.
int64_t ExactPercentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t rank = static_cast<size_t>(std::ceil(p * sorted.size()));
  rank = std::min(std::max<size_t>(rank, 1), sorted.size());
  return sorted[rank - 1];
}

struct QueryOutcome {
  StatusCode code = StatusCode::kOk;
  int64_t latency_ns = 0;
  int64_t queue_wait_ns = 0;
  int64_t done_ns = 0;  ///< absolute completion time (driver clock)
};

}  // namespace

const char* ArrivalModeName(ArrivalMode mode) {
  switch (mode) {
    case ArrivalMode::kClosed:
      return "closed";
    case ArrivalMode::kOpen:
      return "open";
  }
  return "unknown";
}

WorkloadDriver::WorkloadDriver(QueryService* service, WorkloadOptions options)
    : service_(service), options_(std::move(options)) {}

WorkloadReport WorkloadDriver::Run() {
  const int total = options_.total_queries;
  Clock* clock = SteadyClock::Default();

  std::mutex outcomes_mu;
  std::vector<QueryOutcome> outcomes;
  outcomes.reserve(static_cast<size_t>(total));

  auto submit_one = [&](int seq) {
    SubmitOptions submit = options_.submit;
    submit.label = StrFormat(
        "%s-%d", submit.label.empty() ? "wl" : submit.label.c_str(), seq);
    if (options_.priority_of) submit.priority = options_.priority_of(seq);
    return service_->Submit(options_.make_plan(seq), std::move(submit));
  };
  // Always-on completion metrics: cheap (one counter add + one histogram
  // record per query) and what gives the time-series sampler — and therefore
  // /dash — a live throughput and latency signal without the driver knowing
  // anything about the sampler.
  MetricCounter* completed_metric =
      MetricsRegistry::Global()->counter("wlm.driver.completed");
  MetricHistogram* latency_metric =
      MetricsRegistry::Global()->histogram("wlm.driver.latency_ns");
  auto record = [&](const QueryHandle& h) {
    QueryOutcome o;
    o.code = h.status().code();
    o.latency_ns = h.latency_ns();
    o.queue_wait_ns = h.queue_wait_ns();
    o.done_ns = clock->NowNanos();
    completed_metric->Add();
    if (o.code == StatusCode::kOk) latency_metric->Record(o.latency_ns);
    std::lock_guard<std::mutex> lock(outcomes_mu);
    outcomes.push_back(o);
  };

  const int64_t t0 = clock->NowNanos();
  if (options_.mode == ArrivalMode::kClosed) {
    // Each driver thread is one "terminal": submit, wait, repeat.
    std::atomic<int> next_seq{0};
    const int mpl = std::max(1, std::min(options_.mpl, total));
    std::vector<std::thread> terminals;
    terminals.reserve(static_cast<size_t>(mpl));
    for (int i = 0; i < mpl; ++i) {
      terminals.emplace_back([&] {
        for (;;) {
          const int seq = next_seq.fetch_add(1, std::memory_order_relaxed);
          if (seq >= total) return;
          QueryHandlePtr h = submit_one(seq);
          h->Wait();
          record(*h);
        }
      });
    }
    for (std::thread& t : terminals) t.join();
  } else {
    // Open loop: arrivals do not wait for completions. Submit may still
    // block on the service's bounded queue — that throttling is the
    // backpressure under measurement, so it counts against inter-arrival
    // time naturally.
    Rng rng(options_.seed);
    std::vector<QueryHandlePtr> handles;
    handles.reserve(static_cast<size_t>(total));
    int64_t next_arrival_ns = clock->NowNanos();
    for (int seq = 0; seq < total; ++seq) {
      if (options_.arrival_rate_qps > 0) {
        const int64_t sleep_ns = next_arrival_ns - clock->NowNanos();
        if (sleep_ns > 0) {
          std::this_thread::sleep_for(std::chrono::nanoseconds(sleep_ns));
        }
        // Exponential inter-arrival: -ln(U) / λ.
        const double u = std::max(1e-12, 1.0 - rng.NextDouble());
        next_arrival_ns += static_cast<int64_t>(
            -std::log(u) / options_.arrival_rate_qps * 1e9);
      }
      handles.push_back(submit_one(seq));
    }
    for (const QueryHandlePtr& h : handles) {
      h->Wait();
      record(*h);
    }
  }
  const int64_t t1 = clock->NowNanos();

  WorkloadReport report;
  report.mode = ArrivalModeName(options_.mode);
  report.total = total;
  report.makespan_ns = t1 - t0;
  if (report.makespan_ns > 0) {
    report.throughput_qps =
        static_cast<double>(total) / (static_cast<double>(report.makespan_ns) / 1e9);
  }
  std::vector<int64_t> latencies;
  std::vector<int64_t> waits;
  double latency_sum = 0;
  for (const QueryOutcome& o : outcomes) {
    switch (o.code) {
      case StatusCode::kOk:
        ++report.succeeded;
        latencies.push_back(o.latency_ns);
        waits.push_back(o.queue_wait_ns);
        latency_sum += static_cast<double>(o.latency_ns);
        break;
      case StatusCode::kCancelled:
        ++report.cancelled;
        break;
      case StatusCode::kDeadlineExceeded:
        ++report.deadline_exceeded;
        break;
      default:
        ++report.failed;
        break;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::sort(waits.begin(), waits.end());
  report.p50_latency_ns = ExactPercentile(latencies, 0.50);
  report.p95_latency_ns = ExactPercentile(latencies, 0.95);
  report.p99_latency_ns = ExactPercentile(latencies, 0.99);
  report.max_latency_ns = latencies.empty() ? 0 : latencies.back();
  report.mean_latency_ns =
      latencies.empty() ? 0 : latency_sum / static_cast<double>(latencies.size());
  report.p50_queue_wait_ns = ExactPercentile(waits, 0.50);
  report.p95_queue_wait_ns = ExactPercentile(waits, 0.95);
  report.p99_queue_wait_ns = ExactPercentile(waits, 0.99);
  if (options_.timeline) {
    std::vector<CompletionSample> completions;
    completions.reserve(outcomes.size());
    for (const QueryOutcome& o : outcomes) {
      completions.push_back({o.done_ns - t0, o.latency_ns,
                             o.code == StatusCode::kOk});
    }
    report.timeline = BucketTimeline(completions, options_.timeline_period_ns);
  }
  return report;
}

std::vector<TimelinePoint> BucketTimeline(
    const std::vector<CompletionSample>& completions, int64_t period_ns) {
  std::vector<TimelinePoint> out;
  if (completions.empty() || period_ns <= 0) return out;
  int64_t last = 0;
  for (const CompletionSample& c : completions) {
    last = std::max(last, c.rel_done_ns);
  }
  const size_t buckets = static_cast<size_t>(last / period_ns) + 1;
  std::vector<std::vector<int64_t>> ok_latencies(buckets);
  std::vector<int> counts(buckets, 0);
  for (const CompletionSample& c : completions) {
    const int64_t rel = std::max<int64_t>(0, c.rel_done_ns);
    const size_t b = std::min(buckets - 1, static_cast<size_t>(rel / period_ns));
    ++counts[b];
    if (c.ok) ok_latencies[b].push_back(c.latency_ns);
  }
  const double period_s = static_cast<double>(period_ns) / 1e9;
  out.reserve(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    TimelinePoint p;
    p.t_s = static_cast<double>(b) * period_s;
    p.completed = counts[b];
    p.qps = static_cast<double>(counts[b]) / period_s;
    std::sort(ok_latencies[b].begin(), ok_latencies[b].end());
    p.p99_ms =
        static_cast<double>(ExactPercentile(ok_latencies[b], 0.99)) / 1e6;
    out.push_back(p);
  }
  return out;
}

std::string WorkloadReport::ToString() const {
  std::string out = StrFormat(
      "Workload (%s): %d queries in %.2f ms (%.1f q/s) — %d ok, %d failed, "
      "%d cancelled, %d deadline\n",
      mode.c_str(), total, static_cast<double>(makespan_ns) / 1e6,
      throughput_qps, succeeded, failed, cancelled, deadline_exceeded);
  out += StrFormat(
      "  latency    p50 %.2f ms  p95 %.2f ms  p99 %.2f ms  max %.2f ms  "
      "mean %.2f ms\n",
      static_cast<double>(p50_latency_ns) / 1e6,
      static_cast<double>(p95_latency_ns) / 1e6,
      static_cast<double>(p99_latency_ns) / 1e6,
      static_cast<double>(max_latency_ns) / 1e6, mean_latency_ns / 1e6);
  out += StrFormat(
      "  queue wait p50 %.2f ms  p95 %.2f ms  p99 %.2f ms\n",
      static_cast<double>(p50_queue_wait_ns) / 1e6,
      static_cast<double>(p95_queue_wait_ns) / 1e6,
      static_cast<double>(p99_queue_wait_ns) / 1e6);
  out += TimelineToString();
  return out;
}

std::string WorkloadReport::TimelineToString() const {
  if (timeline.empty()) return "";
  std::vector<double> qps, p99;
  qps.reserve(timeline.size());
  p99.reserve(timeline.size());
  double qps_min = timeline.front().qps, qps_max = 0, p99_max = 0;
  for (const TimelinePoint& p : timeline) {
    qps.push_back(p.qps);
    p99.push_back(p.p99_ms);
    qps_min = std::min(qps_min, p.qps);
    qps_max = std::max(qps_max, p.qps);
    p99_max = std::max(p99_max, p.p99_ms);
  }
  std::string out = StrFormat(
      "  timeline   %zu buckets of %.0f s\n", timeline.size(),
      timeline.size() > 1 ? timeline[1].t_s - timeline[0].t_s : 1.0);
  out += StrFormat("    qps    [%s]  min %.1f max %.1f\n",
                   AsciiSparkline(qps).c_str(), qps_min, qps_max);
  out += StrFormat("    p99_ms [%s]  max %.1f\n", AsciiSparkline(p99).c_str(),
                   p99_max);
  return out;
}

std::string WorkloadReport::ToJson() const {
  std::string out = StrFormat(
      "{\"mode\":\"%s\",\"total\":%d,\"succeeded\":%d,\"failed\":%d,"
      "\"cancelled\":%d,\"deadline_exceeded\":%d,\"makespan_ms\":%.3f,"
      "\"throughput_qps\":%.3f,\"p50_latency_ms\":%.3f,"
      "\"p95_latency_ms\":%.3f,\"p99_latency_ms\":%.3f,"
      "\"max_latency_ms\":%.3f,\"mean_latency_ms\":%.3f,"
      "\"p50_queue_wait_ms\":%.3f,\"p95_queue_wait_ms\":%.3f,"
      "\"p99_queue_wait_ms\":%.3f}",
      mode.c_str(), total, succeeded, failed, cancelled, deadline_exceeded,
      static_cast<double>(makespan_ns) / 1e6, throughput_qps,
      static_cast<double>(p50_latency_ns) / 1e6,
      static_cast<double>(p95_latency_ns) / 1e6,
      static_cast<double>(p99_latency_ns) / 1e6,
      static_cast<double>(max_latency_ns) / 1e6, mean_latency_ns / 1e6,
      static_cast<double>(p50_queue_wait_ns) / 1e6,
      static_cast<double>(p95_queue_wait_ns) / 1e6,
      static_cast<double>(p99_queue_wait_ns) / 1e6);
  if (!timeline.empty()) {
    out.back() = ',';  // reopen the object
    out += "\"timeline\":[";
    bool first = true;
    for (const TimelinePoint& p : timeline) {
      if (!first) out.push_back(',');
      first = false;
      out += StrFormat(
          "{\"t_s\":%.3f,\"completed\":%d,\"qps\":%.3f,\"p99_ms\":%.3f}",
          p.t_s, p.completed, p.qps, p.p99_ms);
    }
    out += "]}";
  }
  return out;
}

}  // namespace claims
