#ifndef CLAIMS_WLM_DRIVER_WORKLOAD_DRIVER_H_
#define CLAIMS_WLM_DRIVER_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wlm/query_service.h"

namespace claims {

/// How queries arrive at the QueryService.
enum class ArrivalMode {
  /// Fixed multiprogramming level: `mpl` driver threads each submit a query,
  /// wait for it, and immediately submit the next — the system always has
  /// exactly min(mpl, remaining) queries in flight. Measures sustained
  /// throughput / makespan.
  kClosed,
  /// Open (Poisson) arrivals: one thread submits with exponential
  /// inter-arrival gaps at `arrival_rate_qps`, never waiting for
  /// completions. Measures latency under a load the system does not control;
  /// backpressure from the bounded queue throttles the arrival thread when
  /// the system falls behind.
  kOpen,
};

const char* ArrivalModeName(ArrivalMode mode);

struct WorkloadOptions {
  ArrivalMode mode = ArrivalMode::kClosed;
  /// Queries submitted in total.
  int total_queries = 32;
  /// Closed-loop concurrency (driver threads). Capped at total_queries.
  int mpl = 8;
  /// Open-loop Poisson arrival rate. <= 0 means "as fast as possible"
  /// (inter-arrival 0, the queue absorbs the burst).
  double arrival_rate_qps = 0;
  /// Seed for the deterministic inter-arrival sequence (open mode).
  uint64_t seed = 42;
  /// Template applied to every submission; label is overridden per query
  /// ("<label>-<seq>") and priority by priority_of when set.
  SubmitOptions submit;
  /// Builds the plan for the seq-th query (seq in [0, total_queries)).
  /// Called from driver threads — must be thread-safe. Required.
  std::function<PhysicalPlan(int seq)> make_plan;
  /// Optional per-query priority (defaults to submit.priority for all).
  std::function<int(int seq)> priority_of;
  /// Also emit the per-bucket completion timeline (WorkloadReport::timeline):
  /// the time axis the aggregate percentiles flatten away — a chaos run's
  /// dip-and-recover curve, an open-loop ramp. Costs one timestamp per
  /// completion.
  bool timeline = false;
  /// Timeline bucket width.
  int64_t timeline_period_ns = 1'000'000'000;  // 1 s
};

/// One completion, relative to the run's first submission. The driver
/// collects these when `timeline` is on; BucketTimeline folds them.
struct CompletionSample {
  int64_t rel_done_ns = 0;  ///< completion time − run start
  int64_t latency_ns = 0;
  bool ok = false;
};

/// One timeline bucket: all completions (any outcome) landing in
/// [t_s, t_s + period), with exact p99 latency over the bucket's successes.
struct TimelinePoint {
  double t_s = 0;      ///< bucket start, seconds since run start
  int completed = 0;   ///< completions in the bucket (all outcomes)
  double qps = 0;      ///< completed / bucket width
  double p99_ms = 0;   ///< exact p99 latency of the bucket's successes
};

/// Folds completion samples into fixed-width buckets covering [0, last
/// completion]. Interior buckets with zero completions are kept (a stall
/// must show as a dip, not be elided). Deterministic; exposed for tests.
std::vector<TimelinePoint> BucketTimeline(
    const std::vector<CompletionSample>& completions, int64_t period_ns);

/// Aggregate results of one driver run. Percentiles are exact (computed from
/// the sorted per-query latency vector, not a bucketed histogram).
struct WorkloadReport {
  std::string mode;  ///< "closed" / "open"
  int total = 0;
  int succeeded = 0;
  int failed = 0;
  int cancelled = 0;
  int deadline_exceeded = 0;
  /// First submission → last completion.
  int64_t makespan_ns = 0;
  double throughput_qps = 0;  ///< total / makespan
  // Client-visible latency (queue wait + run), successful queries only.
  int64_t p50_latency_ns = 0;
  int64_t p95_latency_ns = 0;
  int64_t p99_latency_ns = 0;
  int64_t max_latency_ns = 0;
  double mean_latency_ns = 0;
  // Admission-queue component of the above.
  int64_t p50_queue_wait_ns = 0;
  int64_t p95_queue_wait_ns = 0;
  int64_t p99_queue_wait_ns = 0;
  /// Per-bucket completion curve; empty unless WorkloadOptions::timeline.
  std::vector<TimelinePoint> timeline;

  std::string ToString() const;
  /// One flat JSON object — the BENCH_wlm.json record format. When the
  /// timeline was collected it is appended as
  /// "timeline":[{"t_s":…,"completed":…,"qps":…,"p99_ms":…},…].
  std::string ToJson() const;
  /// Two ASCII sparklines (throughput and p99 per bucket) + extremes; ""
  /// when no timeline was collected.
  std::string TimelineToString() const;
};

/// Drives a query stream at a QueryService and measures the latency
/// distribution the paper's elastic machinery is meant to protect. The
/// driver owns arrival timing only; admission, ordering, and core
/// arbitration stay in the service under test.
class WorkloadDriver {
 public:
  WorkloadDriver(QueryService* service, WorkloadOptions options);

  /// Runs the whole workload to completion. Not reentrant.
  WorkloadReport Run();

 private:
  QueryService* service_;
  WorkloadOptions options_;
};

}  // namespace claims

#endif  // CLAIMS_WLM_DRIVER_WORKLOAD_DRIVER_H_
