#ifndef CLAIMS_WLM_ADMISSION_H_
#define CLAIMS_WLM_ADMISSION_H_

#include <cstdint>
#include <mutex>

#include "cluster/executor.h"
#include "cluster/plan.h"
#include "common/macros.h"
#include "obs/metrics_registry.h"

namespace claims {

/// What one query asks of the cluster at admission time. The paper's
/// elasticity machinery handles *running* queries trading cores; admission
/// bounds how much initial demand enters the system at once so the dynamic
/// schedulers arbitrate a feasible set instead of thrashing an oversubscribed
/// one.
struct QueryDemand {
  /// Worker threads the query starts with: Σ over segment instances of
  /// their initial parallelism. EP queries may later expand beyond this —
  /// per-node core caps are the DynamicScheduler's job; admission gates the
  /// entry pressure.
  int cores = 1;
  /// Elastic-buffer capacity the query may pin across its segments.
  int64_t memory_bytes = 0;
};

/// Conservative demand estimate from the plan shape. Memory counts each
/// segment's bounded elastic buffer at capacity (the dominant per-query
/// steady-state allocation; operator state like hash tables is workload
/// data-dependent and intentionally not guessed here).
QueryDemand EstimateDemand(const PhysicalPlan& plan, const ExecOptions& exec);

/// Receipt of one successful TryAdmit: exactly what the ledger booked (the
/// clamped values), plus the raw estimate for error accounting. Releasing
/// through the receipt returns precisely what was charged — releasing from a
/// re-derived estimate skews the books whenever the two diverge (a budget
/// re-configured mid-flight, a clamp applied on admit but not on release).
struct AdmissionReservation {
  int cores = 0;               ///< booked (clamped) initial cores
  int64_t memory_bytes = 0;    ///< booked (clamped) memory reservation
  int64_t estimate_bytes = 0;  ///< unclamped memory estimate at admit time
  bool active = false;         ///< true between TryAdmit and Release
};

struct AdmissionOptions {
  /// Multiprogramming level: most queries running at once. <= 0 disables
  /// the MPL gate.
  int max_concurrent = 8;
  /// Aggregate initial-core budget across the cluster; <= 0 disables.
  /// A sane setting is num_nodes × cores_per_node — then every admitted
  /// worker can, in principle, hold a core.
  int core_budget = 0;
  /// Aggregate elastic-buffer budget; <= 0 disables.
  int64_t memory_budget_bytes = 0;
};

/// Thread-safe reservation ledger for the three admission budgets. Queries
/// are never rejected for load — the QueryService keeps them queued until
/// TryAdmit succeeds (backpressure propagates to submitters through the
/// bounded queue). A query whose demand alone exceeds a budget would starve
/// forever, so an idle system (nothing running) admits any single query;
/// its reservation is clamped at the budget, which both preserves the
/// monitored invariant (cores_in_flight/memory_in_flight never exceed an
/// enabled budget) and keeps the system exclusive until the whale drains.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(AdmissionController);

  const AdmissionOptions& options() const { return options_; }

  /// Atomically reserves the demand if every budget holds; false otherwise.
  /// On success `*reservation` records what was actually booked — release
  /// through it, not through the demand.
  bool TryAdmit(const QueryDemand& demand, AdmissionReservation* reservation);

  /// Legacy form without a receipt (tests); books the same clamped values.
  bool TryAdmit(const QueryDemand& demand);

  /// Returns a reservation to the pool (query finished, failed, or
  /// cancelled), subtracting exactly the booked amounts. Idempotent: the
  /// receipt deactivates on first release.
  void Release(AdmissionReservation* reservation);

  /// Release plus estimate-quality accounting: records
  /// `wlm.mem_estimate_error` = |estimate − actual peak| so operators can
  /// see how far admission's buffer-shaped guess sits from what queries
  /// really used (pass actual_peak_bytes < 0 when the run produced no
  /// usable peak, e.g. it never started).
  void ReleaseWithActual(AdmissionReservation* reservation,
                         int64_t actual_peak_bytes);

  /// Legacy release from a demand estimate (tests). Symmetric with the
  /// legacy TryAdmit only while options stay fixed — new code should hold
  /// the AdmissionReservation receipt instead.
  void Release(const QueryDemand& demand);

  int running() const;
  int cores_in_flight() const;
  int64_t memory_in_flight() const;

 private:
  /// Subtracts booked amounts and refreshes the gauges; caller holds mu_.
  void ReleaseBookedLocked(int cores, int64_t memory_bytes);

  AdmissionOptions options_;
  MetricGauge* running_gauge_;
  MetricGauge* cores_gauge_;
  MetricGauge* memory_gauge_;
  MetricCounter* admitted_metric_;
  MetricHistogram* estimate_error_metric_;

  mutable std::mutex mu_;
  int running_ = 0;
  int cores_ = 0;
  int64_t memory_ = 0;
};

}  // namespace claims

#endif  // CLAIMS_WLM_ADMISSION_H_
