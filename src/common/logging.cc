#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace claims {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};

// Serializes writes so concurrent log lines do not interleave.
std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Small dense thread ids: worker threads come and go per query, so log
/// readers correlate lines far more easily with T0/T1/... than with opaque
/// pthread handles (and these match nothing else, so no false identity with
/// trace tids is implied).
int64_t ThreadId() {
  static std::atomic<int64_t> next{0};
  thread_local int64_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Monotonic microseconds since the first log line of the process — the same
/// steady timebase the engine's SteadyClock measures with, so log timestamps
/// line up with trace/metric durations.
int64_t ElapsedMicros() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                               start)
      .count();
}

/// One-time CLAIMS_LOG_LEVEL pickup (debug|info|warning|error, or 0-3),
/// applied before the first line is emitted. SetLogLevel still overrides.
void InitLevelFromEnv() {
  const char* env = std::getenv("CLAIMS_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') return;
  LogLevel level = LogLevel::kWarning;
  if (std::strcmp(env, "debug") == 0 || std::strcmp(env, "0") == 0) {
    level = LogLevel::kDebug;
  } else if (std::strcmp(env, "info") == 0 || std::strcmp(env, "1") == 0) {
    level = LogLevel::kInfo;
  } else if (std::strcmp(env, "warning") == 0 || std::strcmp(env, "warn") == 0 ||
             std::strcmp(env, "2") == 0) {
    level = LogLevel::kWarning;
  } else if (std::strcmp(env, "error") == 0 || std::strcmp(env, "3") == 0) {
    level = LogLevel::kError;
  } else {
    return;  // unrecognized: keep the default
  }
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

std::once_flag g_env_once;

}  // namespace

void SetLogLevel(LogLevel level) {
  std::call_once(g_env_once, InitLevelFromEnv);
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  std::call_once(g_env_once, InitLevelFromEnv);
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  std::call_once(g_env_once, InitLevelFromEnv);
  const char* base = std::strrchr(file, '/');
  base = base != nullptr ? base + 1 : file;
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "[%s %10.6f T%lld %s:%d] ",
                LevelName(level), static_cast<double>(ElapsedMicros()) / 1e6,
                static_cast<long long>(ThreadId()), base, line);
  stream_ << prefix;
}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) <
      g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace claims
