#include "common/clock.h"

#include <chrono>
#include <thread>

namespace claims {

void Clock::SleepNanos(int64_t ns) {
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

int64_t SteadyClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SteadyClock* SteadyClock::Default() {
  static SteadyClock* clock = new SteadyClock;
  return clock;
}

}  // namespace claims
