#include "common/clock.h"

#include <chrono>

namespace claims {

int64_t SteadyClock::NowNanos() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

SteadyClock* SteadyClock::Default() {
  static SteadyClock* clock = new SteadyClock;
  return clock;
}

}  // namespace claims
