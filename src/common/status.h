#ifndef CLAIMS_COMMON_STATUS_H_
#define CLAIMS_COMMON_STATUS_H_

#include <cassert>

#include "common/macros.h"
#include <optional>
#include <string>
#include <utility>

namespace claims {

/// Error categories used throughout the system. This codebase does not use
/// C++ exceptions; every fallible operation returns a Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kCancelled,
  kDeadlineExceeded,
  /// A transient infrastructure failure (node loss, exhausted send retries):
  /// the operation may succeed if re-dispatched onto surviving resources.
  /// The workload manager's retry policy treats exactly this code as
  /// retryable; everything else is either permanent or caller-initiated.
  kUnavailable,
  kParseError,
  kBindError,
  kPlanError,
};

/// Lightweight success/error carrier, modelled after absl::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status BindError(std::string m) {
    return Status(StatusCode::kBindError, std::move(m));
  }
  static Status PlanError(std::string m) {
    return Status(StatusCode::kPlanError, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" rendering.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status; modelled after absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit conversions from values and statuses keep call sites terse,
  /// matching the established StatusOr idiom.
  Result(T value) : value_(std::move(value)) {}            // NOLINT
  Result(Status status) : status_(std::move(status)) {     // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

const char* StatusCodeName(StatusCode code);

}  // namespace claims

#endif  // CLAIMS_COMMON_STATUS_H_
