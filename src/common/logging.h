#ifndef CLAIMS_COMMON_LOGGING_H_
#define CLAIMS_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace claims {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted; defaults to kWarning so tests and
/// benchmarks stay quiet unless asked.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction. Use via the CLAIMS_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace claims

#define CLAIMS_LOG(level)                                              \
  ::claims::internal::LogMessage(::claims::LogLevel::k##level, __FILE__, \
                                 __LINE__)

#endif  // CLAIMS_COMMON_LOGGING_H_
