#ifndef CLAIMS_COMMON_MEMORY_TRACKER_H_
#define CLAIMS_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace claims {

/// Tracks live and peak bytes for one memory category (buffers, hash tables,
/// materialized intermediates, ...). Used to reproduce the paper's Table 4
/// memory-consumption comparison of EP / SP / ME.
class MemoryTracker {
 public:
  explicit MemoryTracker(std::string name) : name_(std::move(name)) {}

  CLAIMS_DISALLOW_COPY_AND_ASSIGN(MemoryTracker);

  void Allocate(int64_t bytes) {
    int64_t now = current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free peak update; racing updates converge to the true maximum.
    int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }

  void Release(int64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

  void Reset() {
    current_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace claims

#endif  // CLAIMS_COMMON_MEMORY_TRACKER_H_
