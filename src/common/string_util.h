#ifndef CLAIMS_COMMON_STRING_UTIL_H_
#define CLAIMS_COMMON_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace claims {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Lower-cases ASCII.
std::string ToLower(std::string_view s);
/// Upper-cases ASCII.
std::string ToUpper(std::string_view s);

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Renders a byte count as "1.41 GB" style text.
std::string HumanBytes(int64_t bytes);

/// Appends `s` to `*out` with JSON string escaping (quotes, backslash,
/// control characters). Shared by the trace exporter and the monitor
/// endpoints.
void AppendJsonEscaped(std::string* out, std::string_view s);
/// Returns `s` JSON-escaped (no surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace claims

#endif  // CLAIMS_COMMON_STRING_UTIL_H_
