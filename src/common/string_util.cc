#include "common/string_util.h"

#include <cctype>
#include <cstdio>

namespace claims {

std::string StrFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(n > 0 ? n : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string HumanBytes(int64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StrFormat("%.2f %s", v, units[u]);
}

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(&out, s);
  return out;
}

}  // namespace claims
