#ifndef CLAIMS_COMMON_CLOCK_H_
#define CLAIMS_COMMON_CLOCK_H_

#include <cstdint>

namespace claims {

/// Abstract monotonic clock. The real engine injects SteadyClock; the
/// virtual-time cluster simulator injects its event-driven SimClock so that
/// the *same* scheduler/metrics code measures processing rates in either
/// world (see DESIGN.md §1).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time in nanoseconds.
  virtual int64_t NowNanos() const = 0;

  /// Blocks the caller until the clock has advanced by roughly `ns`. Timed
  /// waits (e.g. TokenBucket::Acquire) MUST go through this instead of
  /// sleeping wall-clock time directly, so that a virtual/manual clock can
  /// advance its own notion of time and the wait terminates deterministically.
  /// The default implementation sleeps real time, which is only correct for
  /// clocks that advance with real time; a manual clock that keeps the
  /// default and never advances is rejected by callers (they detect that a
  /// SleepNanos produced no progress and fail the wait).
  virtual void SleepNanos(int64_t ns);
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  int64_t NowNanos() const override;

  /// Process-wide shared instance.
  static SteadyClock* Default();
};

}  // namespace claims

#endif  // CLAIMS_COMMON_CLOCK_H_
