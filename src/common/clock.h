#ifndef CLAIMS_COMMON_CLOCK_H_
#define CLAIMS_COMMON_CLOCK_H_

#include <cstdint>

namespace claims {

/// Abstract monotonic clock. The real engine injects SteadyClock; the
/// virtual-time cluster simulator injects its event-driven SimClock so that
/// the *same* scheduler/metrics code measures processing rates in either
/// world (see DESIGN.md §1).
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current monotonic time in nanoseconds.
  virtual int64_t NowNanos() const = 0;
};

/// Wall-clock implementation backed by std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  int64_t NowNanos() const override;

  /// Process-wide shared instance.
  static SteadyClock* Default();
};

}  // namespace claims

#endif  // CLAIMS_COMMON_CLOCK_H_
