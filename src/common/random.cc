#include "common/random.h"

#include <cmath>

namespace claims {

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion of the seed keeps low-entropy seeds well mixed.
  auto splitmix = [](uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  };
  uint64_t x = seed;
  s0_ = splitmix(x);
  s1_ = splitmix(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Uniform(uint64_t n) {
  if (n == 0) return 0;
  return Next() % n;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  // Gray et al.'s quick Zipf sampling. Zeta(n) is O(n) once at construction;
  // generators are built per table, not per row.
  zetan_ = Zeta(n, theta);
  double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / n, 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next() {
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  uint64_t v = static_cast<uint64_t>(
      n_ * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace claims
