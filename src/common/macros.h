#ifndef CLAIMS_COMMON_MACROS_H_
#define CLAIMS_COMMON_MACROS_H_

// Project-wide helper macros. Kept deliberately small; see the Google C++
// style guide for the conventions this codebase follows.

#define CLAIMS_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;             \
  TypeName& operator=(const TypeName&) = delete

// Evaluates an expression returning claims::Status and propagates failure.
#define CLAIMS_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::claims::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                        \
  } while (false)

// Assigns the value of a claims::Result<T> expression to `lhs`, propagating
// failure as a Status.
#define CLAIMS_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                 \
  if (!var.ok()) return var.status();                 \
  lhs = std::move(var).value()

#define CLAIMS_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define CLAIMS_ASSIGN_OR_RETURN_CONCAT(x, y) CLAIMS_ASSIGN_OR_RETURN_CONCAT_(x, y)
#define CLAIMS_ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  CLAIMS_ASSIGN_OR_RETURN_IMPL(                                                \
      CLAIMS_ASSIGN_OR_RETURN_CONCAT(_result_or_, __LINE__), lhs, rexpr)

#endif  // CLAIMS_COMMON_MACROS_H_
