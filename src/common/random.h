#ifndef CLAIMS_COMMON_RANDOM_H_
#define CLAIMS_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace claims {

/// Deterministic xorshift128+ PRNG. All data generators and the simulator use
/// this (never std::random_device / wall clock), so every experiment in
/// bench/ reproduces bit-identically.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t Next();

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

/// Zipf-distributed integers over [0, n). Used by the SSE generator to skew
/// account/security popularity (hot stocks dominate trade volume).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Rng rng_;

  static double Zeta(uint64_t n, double theta);
};

}  // namespace claims

#endif  // CLAIMS_COMMON_RANDOM_H_
