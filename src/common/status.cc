#include "common/status.h"

namespace claims {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kBindError:
      return "BIND_ERROR";
    case StatusCode::kPlanError:
      return "PLAN_ERROR";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

}  // namespace claims
