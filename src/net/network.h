#ifndef CLAIMS_NET_NETWORK_H_
#define CLAIMS_NET_NETWORK_H_

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "common/memory_tracker.h"
#include "fault/injector.h"
#include "net/channel.h"
#include "net/token_bucket.h"
#include "obs/metrics_registry.h"

namespace claims {

struct NetworkOptions {
  /// Per-node NIC bandwidth (full duplex: separate egress/ingress budgets).
  /// The paper's gigabit switch ≈ 125 MB/s. <= 0 disables throttling.
  int64_t bandwidth_bytes_per_sec = 0;
  /// Per-channel buffer depth; <= 0 means unbounded (materialized execution).
  int capacity_blocks = 64;
  /// Timestamp source for trace events; nullptr uses SteadyClock, the
  /// virtual-time simulator passes its SimClock.
  Clock* clock = nullptr;
  /// Send retry policy, exercised only when a fault injector drops blocks
  /// (the fault-free fabric never NACKs). Backoff is exponential with
  /// +/- `retry_jitter` relative jitter drawn from the injector's seed.
  int max_send_attempts = 5;
  int64_t retry_backoff_ns = 200'000;
  double retry_backoff_multiplier = 2.0;
  double retry_jitter = 0.2;
};

/// Terminal result of a (possibly retried) fabric send.
enum class SendOutcome {
  kOk,
  kCancelled,    ///< the caller's cancel flag tripped mid-send
  kUnavailable,  ///< endpoint node dead, or drops exhausted every retry
};

/// A send's addressing. Logical ids name the *plan-level* endpoints (which
/// partition produced the block, which merger consumes it — channels and
/// visit-rate accounting key on these); physical ids name the *placement*
/// (whose NIC budget is charged, whether the send is loopback). They differ
/// only after node loss, when the executor re-dispatches a logical node's
/// segments onto a surviving physical node (docs/FAULTS.md).
struct Route {
  int exchange_id = 0;
  int from_logical = 0;
  int from_physical = 0;
  int to_logical = 0;
  int to_physical = 0;
};

/// The in-process network fabric of the simulated cluster: one BlockChannel
/// per (exchange, consumer node), plus token-bucket NICs per node. A send
/// from node f to node t charges f's egress and t's ingress budgets, so the
/// aggregate repartitioning traffic of a query saturates exactly like the
/// paper's gigabit links (a loopback "send" — f == t — is free, matching the
/// short-circuit every distributed engine applies to local exchanges).
class Network {
 public:
  Network(int num_nodes, NetworkOptions options,
          MemoryTracker* memory = nullptr);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(Network);

  int num_nodes() const { return num_nodes_; }

  /// Declares an exchange: `num_producers` producer segments will send to
  /// each of `consumer_nodes`. Must be called before Send/OpenChannel.
  /// `capacity_override` > 0 replaces the default channel depth; < 0 makes
  /// the exchange unbounded (ME materialization).
  void CreateExchange(int exchange_id, int num_producers,
                      const std::vector<int>& consumer_nodes,
                      int capacity_override = 0);

  /// Sends `block` from node `from` to the exchange's channel at node `to`,
  /// charging NIC budgets. False when cancelled or unavailable. Equivalent
  /// to SendRoute with logical == physical on both ends.
  bool Send(int exchange_id, int from, int to, BlockPtr block,
            const std::atomic<bool>* cancel = nullptr);

  /// The full-fidelity send: consults the fault injector (drop / delay /
  /// duplicate fates), retries dropped blocks with exponential backoff +
  /// jitter up to `max_send_attempts`, fast-fails kUnavailable when either
  /// physical endpoint is dead, and charges the *physical* NIC budgets while
  /// addressing the *logical* channel. On kOk, `wire_seq` (when non-null)
  /// receives the wire sequence number the channel assigned — the causal
  /// profiler keys its send↔receive links on it (a fabric-dropped attempt is
  /// never enqueued, so each delivered block has exactly one sequence).
  SendOutcome SendRoute(const Route& route, BlockPtr block,
                        const std::atomic<bool>* cancel = nullptr,
                        uint64_t* wire_seq = nullptr);

  /// Attaches the chaos plane; nullptr detaches. The injector must outlive
  /// every in-flight send.
  void SetFaultInjector(FaultInjector* injector);

  /// Marks a node crashed: subsequent sends touching it fail kUnavailable
  /// immediately instead of burning retries. Called by Cluster::KillNode.
  void SetNodeDead(int node);
  bool NodeAlive(int node) const;

  /// One producer of `exchange_id` is done with *all* destinations.
  void CloseProducer(int exchange_id);

  /// Removes an exchange's channels once its query completed. Callers must
  /// have joined every producer and consumer of the exchange first — the
  /// channels are destroyed, so any pointer from GetChannel goes stale. Lets
  /// concurrent queries (which namespace their exchange ids per execution)
  /// return their channels instead of growing the fabric map forever.
  void DestroyExchange(int exchange_id);

  /// The consumer-side endpoint at node `node`.
  BlockChannel* GetChannel(int exchange_id, int node);

  /// Cancels every channel (query abort).
  void CancelAll();

  TokenBucket* egress(int node) { return egress_[node].get(); }
  TokenBucket* ingress(int node) { return ingress_[node].get(); }

  /// Aggregate bytes sent across node boundaries (network utilization).
  int64_t total_remote_bytes() const;

 private:
  /// Sleeps `delay_ns` on the fabric clock in cancellation-responsive
  /// chunks; false when `cancel` trips.
  bool SleepCancellable(int64_t delay_ns, const std::atomic<bool>* cancel);

  int num_nodes_;
  NetworkOptions options_;
  MemoryTracker* memory_;
  Clock* clock_;
  MetricCounter* blocks_sent_metric_;
  MetricCounter* bytes_sent_metric_;
  MetricCounter* remote_bytes_metric_;
  MetricCounter* sent_metric_;
  MetricCounter* dropped_metric_;
  MetricCounter* retries_metric_;
  MetricCounter* send_failures_metric_;
  /// Per-origin-node fabric health ("net.sent:n3"), resolved at construction.
  std::vector<MetricCounter*> sent_per_node_;
  std::vector<MetricCounter*> dropped_per_node_;
  std::vector<MetricCounter*> retries_per_node_;
  std::atomic<FaultInjector*> injector_{nullptr};
  std::atomic<uint64_t> dead_mask_{0};
  std::vector<std::unique_ptr<TokenBucket>> egress_;
  std::vector<std::unique_ptr<TokenBucket>> ingress_;

  mutable std::mutex mu_;
  /// (exchange_id, consumer node) → channel.
  std::map<std::pair<int, int>, std::unique_ptr<BlockChannel>> channels_;
  /// exchange_id → consumer nodes (for CloseProducer fan-out).
  std::map<int, std::vector<int>> exchange_consumers_;
  std::atomic<int64_t> remote_bytes_{0};
};

}  // namespace claims

#endif  // CLAIMS_NET_NETWORK_H_
