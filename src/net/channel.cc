#include "net/channel.h"

#include <atomic>
#include <chrono>

#include "obs/trace.h"

namespace claims {

BlockChannel::BlockChannel(int num_producers, int capacity_blocks,
                           MemoryTracker* memory)
    : capacity_(capacity_blocks), memory_(memory),
      open_producers_(num_producers) {}

void BlockChannel::SetTraceInfo(int exchange_id, int consumer_node,
                                Clock* clock) {
  trace_exchange_ = exchange_id;
  trace_node_ = consumer_node;
  trace_clock_ = clock;
}

bool BlockChannel::Enqueue(NetBlock block, const std::atomic<bool>* cancel,
                           bool assign_seq, uint64_t* assigned_seq) {
  std::unique_lock<std::mutex> lock(mu_);
  while (capacity_ > 0 && static_cast<int>(queue_.size()) >= capacity_ &&
         !cancelled_) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return false;
    }
    not_full_.wait_for(lock, std::chrono::milliseconds(1));
  }
  if (cancelled_) return false;
  if (assign_seq) block.wire_seq = next_send_seq_[block.from_node]++;
  if (assigned_seq != nullptr) *assigned_seq = block.wire_seq;
  int64_t bytes = block.block->payload_bytes();
  buffered_bytes_ += bytes;
  if (memory_ != nullptr) memory_->Allocate(bytes);
  queue_.push_back(std::move(block));
  ++total_sent_;
  not_empty_.notify_one();
  return true;
}

bool BlockChannel::Send(NetBlock block, const std::atomic<bool>* cancel,
                        uint64_t* assigned_seq) {
  return Enqueue(std::move(block), cancel, /*assign_seq=*/true, assigned_seq);
}

bool BlockChannel::SendDuplicate(NetBlock block,
                                 const std::atomic<bool>* cancel) {
  return Enqueue(std::move(block), cancel, /*assign_seq=*/false, nullptr);
}

void BlockChannel::CloseProducer() {
  std::lock_guard<std::mutex> lock(mu_);
  --open_producers_;
  if (open_producers_ <= 0) not_empty_.notify_all();
}

ChannelStatus BlockChannel::Receive(NetBlock* out, int64_t timeout_ns) {
  std::unique_lock<std::mutex> lock(mu_);
  // timeout_ns <= 0 is a non-blocking poll: decide from current state only.
  if (timeout_ns > 0) {
    not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout_ns), [this] {
      return cancelled_ || !queue_.empty() || open_producers_ <= 0;
    });
  }
  if (cancelled_) return ChannelStatus::kClosed;
  while (!queue_.empty()) {
    NetBlock block = std::move(queue_.front());
    queue_.pop_front();
    int64_t bytes = block.block->payload_bytes();
    buffered_bytes_ -= bytes;
    if (memory_ != nullptr) memory_->Release(bytes);
    not_full_.notify_all();
    uint64_t& expected = next_recv_seq_[block.from_node];
    if (block.wire_seq < expected) {
      // Redelivery of a consumed sequence number (injected duplication or a
      // retry whose first copy did land): drop silently.
      ++duplicates_suppressed_;
      continue;
    }
    if (block.wire_seq > expected) {
      // Blocks between expected and wire_seq never arrived. Record the gap;
      // whether that is fatal is the sender's call (exhausted retries fail
      // the producing segment, so a gap here always has a matching typed
      // error on the send side).
      sequence_gaps_ += static_cast<int64_t>(block.wire_seq - expected);
    }
    expected = block.wire_seq + 1;
    TraceCollector* tc = TraceCollector::Global();
    if (trace_clock_ != nullptr && tc->enabled()) {
      tc->Instant(trace_clock_->NowNanos(), trace_node_, "net", "recv",
                  {{"exchange", static_cast<int64_t>(trace_exchange_)},
                   {"from", static_cast<int64_t>(block.from_node)},
                   {"bytes", bytes},
                   {"queued", static_cast<int64_t>(queue_.size())}});
    }
    *out = std::move(block);
    return ChannelStatus::kOk;
  }
  if (open_producers_ <= 0) return ChannelStatus::kClosed;
  return ChannelStatus::kTimeout;
}

void BlockChannel::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
  if (memory_ != nullptr) memory_->Release(buffered_bytes_);
  buffered_bytes_ = 0;
  queue_.clear();
  not_full_.notify_all();
  not_empty_.notify_all();
}

size_t BlockChannel::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int64_t BlockChannel::total_blocks_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_sent_;
}

int64_t BlockChannel::buffered_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return buffered_bytes_;
}

int64_t BlockChannel::duplicates_suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return duplicates_suppressed_;
}

int64_t BlockChannel::sequence_gaps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sequence_gaps_;
}

}  // namespace claims
