#ifndef CLAIMS_NET_TOKEN_BUCKET_H_
#define CLAIMS_NET_TOKEN_BUCKET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/macros.h"

namespace claims {

/// Token-bucket rate limiter modelling a NIC of fixed bandwidth (the paper's
/// cluster uses a gigabit switch, §5.1). Acquire(bytes) blocks the caller
/// until the bytes fit into the refill budget — the in-process analogue of a
/// send blocking on a saturated link, producing exactly the backpressure the
/// dynamic scheduler reads as "over-producing for the network".
class TokenBucket {
 public:
  /// `bytes_per_sec <= 0` disables throttling.
  TokenBucket(int64_t bytes_per_sec, Clock* clock = nullptr);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(TokenBucket);

  /// Blocks until `bytes` tokens are available, then consumes them. Returns
  /// the nanoseconds spent waiting. Honors `cancel` (checked while waiting);
  /// returns -1 if cancelled. Waits are timed through the injected clock's
  /// SleepNanos, so a virtual clock makes throttling deterministic; a frozen
  /// clock (one whose SleepNanos does not advance it) is rejected with -1
  /// instead of spinning forever.
  int64_t Acquire(int64_t bytes, const std::atomic<bool>* cancel = nullptr);

  /// Rewrites the bandwidth budget (the chaos plane's NIC-degradation fault
  /// point). Takes effect for acquisitions in flight: waiters re-read the
  /// rate each refill round. Accrued tokens are clamped to the new burst so
  /// a degraded NIC cannot spend a healthy-rate backlog.
  void SetBytesPerSec(int64_t bytes_per_sec);

  int64_t bytes_per_sec() const {
    return bytes_per_sec_.load(std::memory_order_relaxed);
  }
  bool throttled() const { return bytes_per_sec() > 0; }

  /// Total bytes that passed through (for utilization accounting).
  int64_t total_bytes() const {
    return total_bytes_.load(std::memory_order_relaxed);
  }

 private:
  static double BurstBytes(int64_t bytes_per_sec);

  std::atomic<int64_t> bytes_per_sec_;
  Clock* clock_;
  std::mutex mu_;
  double tokens_ = 0;
  int64_t last_refill_ns_ = 0;
  std::atomic<int64_t> total_bytes_{0};
};

}  // namespace claims

#endif  // CLAIMS_NET_TOKEN_BUCKET_H_
