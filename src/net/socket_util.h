#ifndef CLAIMS_NET_SOCKET_UTIL_H_
#define CLAIMS_NET_SOCKET_UTIL_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "common/status.h"

namespace claims {

/// Thin POSIX TCP wrappers shared by the net fabric and the obs monitor
/// server (the lowest net layer: depends only on common, so obs can link it
/// without pulling in the block fabric). All sockets are blocking; callers
/// that need cancellable accepts close the listener from another thread and
/// treat the resulting error as shutdown.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket() { Close(); }
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(ListenSocket);

  /// Binds and listens on `bind_address:port` (IPv4 dotted quad; port 0
  /// picks an ephemeral port — read it back from port()).
  Status Listen(const std::string& bind_address, int port, int backlog = 16);

  /// Blocks until a client connects; returns the connected fd (caller owns)
  /// or a Cancelled status once Close() was called from another thread.
  Result<int> Accept();

  /// Shuts the listener down; a concurrent Accept() returns Cancelled.
  /// Idempotent and callable from any thread.
  void Close();

  bool listening() const { return fd_.load(std::memory_order_acquire) >= 0; }
  /// Bound port (resolves ephemeral port 0); -1 before Listen.
  int port() const { return port_; }

 private:
  /// Atomic: Close() is called from a thread other than the one blocked in
  /// Accept().
  std::atomic<int> fd_{-1};
  int port_ = -1;
};

/// Writes all of `data` to `fd`, looping over partial writes. False on error
/// (peer gone); the caller still owns (and must close) the fd.
bool WriteFully(int fd, const void* data, size_t size);

/// Reads until `\r\n\r\n` (end of HTTP headers) or `max_bytes`, appending to
/// `*out`. Returns the number of bytes read after the terminator was seen
/// (so callers can slice a request body prefix), or -1 on error/EOF before
/// any terminator.
int64_t ReadUntilHeaderEnd(int fd, std::string* out, size_t max_bytes);

/// Reads exactly `n` more bytes into `*out`; false on premature EOF/error.
bool ReadExact(int fd, std::string* out, size_t n);

/// Closes a connected fd (shutdown + close); safe on -1.
void CloseSocket(int fd);

/// Minimal blocking HTTP/1.1 round trip for tests, benches, and the CI smoke
/// driver: connects to 127.0.0.1-style `host:port`, issues
/// `<method> <target> HTTP/1.1` with `body` (if non-empty), and returns the
/// raw response (status line + headers + body). Not a general client — no
/// chunked encoding, no redirects, 8 MiB response cap.
Result<std::string> HttpRoundTrip(const std::string& host, int port,
                                  const std::string& method,
                                  const std::string& target,
                                  const std::string& body = "");

/// Splits a raw HTTP response into (status code, body). Returns -1 when the
/// input is not an HTTP response.
int ParseHttpResponse(const std::string& raw, std::string* body);

}  // namespace claims

#endif  // CLAIMS_NET_SOCKET_UTIL_H_
