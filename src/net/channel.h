#ifndef CLAIMS_NET_CHANNEL_H_
#define CLAIMS_NET_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/clock.h"
#include "common/macros.h"
#include "common/memory_tracker.h"
#include "storage/block.h"

namespace claims {

/// A block with its origin — mergers need the producer's identity to
/// aggregate per-producer visit-rate contributions (paper §4.3, Fig. 7).
struct NetBlock {
  BlockPtr block;
  int from_node = 0;
};

/// Receive outcomes; kTimeout lets mergers poll their terminate flag while
/// idle instead of blocking forever on a quiet link.
enum class ChannelStatus { kOk, kTimeout, kClosed };

/// Bounded MPMC block queue — one per (exchange, consumer node). All producer
/// segments of the exchange send into it; the consumer segment's worker
/// threads receive from it. Capacity bounds give end-to-end backpressure from
/// a slow consumer back into the producers' elastic buffers.
class BlockChannel {
 public:
  /// `num_producers` senders must call CloseProducer before the channel
  /// drains to end-of-stream. `capacity_blocks <= 0` means unbounded (used by
  /// materialized execution, where the channel *is* the materialization).
  BlockChannel(int num_producers, int capacity_blocks,
               MemoryTracker* memory = nullptr);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(BlockChannel);

  /// Identifies this endpoint for trace events ("recv" instants on the
  /// consumer node's track). Called once by Network when the exchange is
  /// declared; without it the channel stays silent even when tracing is on.
  void SetTraceInfo(int exchange_id, int consumer_node, Clock* clock);

  /// Blocks while full; false when cancelled.
  bool Send(NetBlock block, const std::atomic<bool>* cancel = nullptr);

  /// One producer finished; at zero the channel closes after draining.
  void CloseProducer();

  /// Waits up to `timeout_ns` for a block.
  ChannelStatus Receive(NetBlock* out, int64_t timeout_ns);

  void Cancel();

  size_t size() const;
  int64_t buffered_bytes() const;
  int64_t total_blocks_sent() const;

 private:
  int capacity_;
  MemoryTracker* memory_;
  int trace_exchange_ = -1;
  int trace_node_ = 0;
  Clock* trace_clock_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<NetBlock> queue_;
  int open_producers_;
  int64_t buffered_bytes_ = 0;
  int64_t total_sent_ = 0;
  bool cancelled_ = false;
};

}  // namespace claims

#endif  // CLAIMS_NET_CHANNEL_H_
