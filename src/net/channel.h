#ifndef CLAIMS_NET_CHANNEL_H_
#define CLAIMS_NET_CHANNEL_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>

#include "common/clock.h"
#include "common/macros.h"
#include "common/memory_tracker.h"
#include "storage/block.h"

namespace claims {

/// A block with its origin — mergers need the producer's identity to
/// aggregate per-producer visit-rate contributions (paper §4.3, Fig. 7).
/// `wire_seq` is the per-(producer, channel) wire sequence number Send
/// assigns; Receive uses it to suppress duplicated deliveries and detect
/// losses (docs/FAULTS.md).
struct NetBlock {
  BlockPtr block;
  int from_node = 0;
  uint64_t wire_seq = 0;
};

/// Receive outcomes; kTimeout lets mergers poll their terminate flag while
/// idle instead of blocking forever on a quiet link.
enum class ChannelStatus { kOk, kTimeout, kClosed };

/// Bounded MPMC block queue — one per (exchange, consumer node). All producer
/// segments of the exchange send into it; the consumer segment's worker
/// threads receive from it. Capacity bounds give end-to-end backpressure from
/// a slow consumer back into the producers' elastic buffers.
class BlockChannel {
 public:
  /// `num_producers` senders must call CloseProducer before the channel
  /// drains to end-of-stream. `capacity_blocks <= 0` means unbounded (used by
  /// materialized execution, where the channel *is* the materialization).
  BlockChannel(int num_producers, int capacity_blocks,
               MemoryTracker* memory = nullptr);
  CLAIMS_DISALLOW_COPY_AND_ASSIGN(BlockChannel);

  /// Identifies this endpoint for trace events ("recv" instants on the
  /// consumer node's track). Called once by Network when the exchange is
  /// declared; without it the channel stays silent even when tracing is on.
  void SetTraceInfo(int exchange_id, int consumer_node, Clock* clock);

  /// Blocks while full; false when cancelled. Assigns the block the next
  /// wire sequence number of its producer (keyed by `from_node`); the
  /// assigned value is written to `assigned_seq` when non-null (the fault
  /// injector's duplication path re-sends under the same sequence).
  bool Send(NetBlock block, const std::atomic<bool>* cancel = nullptr,
            uint64_t* assigned_seq = nullptr);

  /// Enqueues a copy of an already-sequenced block *without* assigning a new
  /// wire sequence — the fault injector's block-duplication fate. The
  /// receiver's duplicate suppression drops whichever copy arrives second.
  bool SendDuplicate(NetBlock block, const std::atomic<bool>* cancel = nullptr);

  /// One producer finished; at zero the channel closes after draining.
  void CloseProducer();

  /// Waits up to `timeout_ns` for a block. `timeout_ns <= 0` is a
  /// non-blocking poll: it returns whatever is decidable right now (kOk,
  /// kClosed) without waiting, else kTimeout immediately. Duplicated
  /// deliveries (wire_seq already consumed from that producer) are dropped
  /// here and never surfaced.
  ChannelStatus Receive(NetBlock* out, int64_t timeout_ns);

  /// Blocks received then dropped as duplicates (fault-injection evidence).
  int64_t duplicates_suppressed() const;
  /// Wire-sequence gaps observed (deliveries missing ahead of a received
  /// block). With send-side retry exhausting, a gap means a block was lost
  /// for good; the consumer's segment fails rather than silently under-counts.
  int64_t sequence_gaps() const;

  void Cancel();

  size_t size() const;
  int64_t buffered_bytes() const;
  int64_t total_blocks_sent() const;

 private:
  int capacity_;
  MemoryTracker* memory_;
  int trace_exchange_ = -1;
  int trace_node_ = 0;
  Clock* trace_clock_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<NetBlock> queue_;
  int open_producers_;
  int64_t buffered_bytes_ = 0;
  int64_t total_sent_ = 0;
  bool cancelled_ = false;
  /// Per-producer wire sequencing (keyed by from_node): next seq to assign
  /// on the send side, next seq expected on the receive side.
  std::map<int, uint64_t> next_send_seq_;
  std::map<int, uint64_t> next_recv_seq_;
  int64_t duplicates_suppressed_ = 0;
  int64_t sequence_gaps_ = 0;

  bool Enqueue(NetBlock block, const std::atomic<bool>* cancel,
               bool assign_seq, uint64_t* assigned_seq);
};

}  // namespace claims

#endif  // CLAIMS_NET_CHANNEL_H_
