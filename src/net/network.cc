#include "net/network.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace claims {

Network::Network(int num_nodes, NetworkOptions options, MemoryTracker* memory)
    : num_nodes_(num_nodes), options_(options), memory_(memory),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Default()) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  blocks_sent_metric_ = reg->counter("net.blocks_sent");
  bytes_sent_metric_ = reg->counter("net.bytes_sent");
  remote_bytes_metric_ = reg->counter("net.remote_bytes");
  sent_metric_ = reg->counter("net.sent");
  dropped_metric_ = reg->counter("net.dropped");
  retries_metric_ = reg->counter("net.retries");
  send_failures_metric_ = reg->counter("net.send_failures");
  for (int i = 0; i < num_nodes; ++i) {
    std::string suffix = ":n" + std::to_string(i);
    sent_per_node_.push_back(reg->counter("net.sent" + suffix));
    dropped_per_node_.push_back(reg->counter("net.dropped" + suffix));
    retries_per_node_.push_back(reg->counter("net.retries" + suffix));
  }
  for (int i = 0; i < num_nodes; ++i) {
    // The buckets share the fabric's clock: under a virtual clock, NIC
    // throttle waits advance virtual time instead of sleeping real time.
    egress_.push_back(
        std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec,
                                      clock_));
    ingress_.push_back(
        std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec,
                                      clock_));
  }
}

void Network::CreateExchange(int exchange_id, int num_producers,
                             const std::vector<int>& consumer_nodes,
                             int capacity_override) {
  std::lock_guard<std::mutex> lock(mu_);
  int capacity = options_.capacity_blocks;
  if (capacity_override > 0) capacity = capacity_override;
  if (capacity_override < 0) capacity = 0;  // unbounded
  for (int node : consumer_nodes) {
    auto channel =
        std::make_unique<BlockChannel>(num_producers, capacity, memory_);
    channel->SetTraceInfo(exchange_id, node, clock_);
    channels_[{exchange_id, node}] = std::move(channel);
  }
  exchange_consumers_[exchange_id] = consumer_nodes;
}

bool Network::Send(int exchange_id, int from, int to, BlockPtr block,
                   const std::atomic<bool>* cancel) {
  Route route;
  route.exchange_id = exchange_id;
  route.from_logical = route.from_physical = from;
  route.to_logical = route.to_physical = to;
  return SendRoute(route, std::move(block), cancel) == SendOutcome::kOk;
}

void Network::SetFaultInjector(FaultInjector* injector) {
  injector_.store(injector, std::memory_order_release);
}

void Network::SetNodeDead(int node) {
  if (node < 0 || node >= 64) return;
  dead_mask_.fetch_or(uint64_t{1} << node, std::memory_order_release);
}

bool Network::NodeAlive(int node) const {
  if (node < 0 || node >= 64) return true;
  return ((dead_mask_.load(std::memory_order_acquire) >> node) & 1) == 0;
}

bool Network::SleepCancellable(int64_t delay_ns,
                               const std::atomic<bool>* cancel) {
  while (delay_ns > 0) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return false;
    }
    int64_t chunk = std::min<int64_t>(delay_ns, 1'000'000);
    clock_->SleepNanos(chunk);
    delay_ns -= chunk;
  }
  return true;
}

SendOutcome Network::SendRoute(const Route& route, BlockPtr block,
                               const std::atomic<bool>* cancel,
                               uint64_t* wire_seq) {
  // Channels are addressed by *logical* endpoints: after re-dispatch the
  // surviving node keeps consuming the dead node's channel, so producers
  // need not learn new addresses mid-query.
  BlockChannel* channel = GetChannel(route.exchange_id, route.to_logical);
  if (channel == nullptr) return SendOutcome::kUnavailable;
  FaultInjector* injector = injector_.load(std::memory_order_acquire);
  const int64_t bytes = block->payload_bytes();
  int64_t backoff_ns = options_.retry_backoff_ns;
  for (int attempt = 0;; ++attempt) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return SendOutcome::kCancelled;
    }
    if (!NodeAlive(route.from_physical) || !NodeAlive(route.to_physical)) {
      send_failures_metric_->Add();
      return SendOutcome::kUnavailable;
    }
    SendDecision decision;
    if (injector != nullptr) {
      decision = injector->OnSend(route.exchange_id, route.from_physical,
                                  route.to_physical);
    }
    if (decision.delay_ns > 0 &&
        !SleepCancellable(decision.delay_ns, cancel)) {
      return SendOutcome::kCancelled;
    }
    if (decision.fate == SendDecision::Fate::kDrop) {
      dropped_metric_->Add();
      dropped_per_node_[route.from_physical]->Add();
      if (attempt + 1 >= options_.max_send_attempts) {
        send_failures_metric_->Add();
        return SendOutcome::kUnavailable;
      }
      retries_metric_->Add();
      retries_per_node_[route.from_physical]->Add();
      // Exponential backoff with symmetric jitter from the injector's seeded
      // stream, so colliding retriers decorrelate deterministically.
      double jitter =
          1.0 + options_.retry_jitter * (2.0 * injector->NextDouble() - 1.0);
      int64_t wait =
          std::max<int64_t>(1, static_cast<int64_t>(backoff_ns * jitter));
      if (!SleepCancellable(wait, cancel)) return SendOutcome::kCancelled;
      backoff_ns = static_cast<int64_t>(backoff_ns *
                                        options_.retry_backoff_multiplier);
      continue;
    }
    // NIC budgets are physical: a re-dispatched segment spends its *host's*
    // bandwidth, and a send that lands on the same box is loopback-free.
    if (route.from_physical != route.to_physical) {
      if (egress_[route.from_physical]->Acquire(bytes, cancel) < 0) {
        return SendOutcome::kCancelled;
      }
      if (ingress_[route.to_physical]->Acquire(bytes, cancel) < 0) {
        return SendOutcome::kCancelled;
      }
      remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      remote_bytes_metric_->Add(bytes);
    }
    // NetBlock carries the logical producer id: mergers key visit-rate
    // aggregation and wire sequencing on the plan-level endpoint.
    uint64_t seq = 0;
    NetBlock net_block{block, route.from_logical, 0};
    if (!channel->Send(std::move(net_block), cancel, &seq)) {
      return SendOutcome::kCancelled;
    }
    if (wire_seq != nullptr) *wire_seq = seq;
    if (decision.fate == SendDecision::Fate::kDuplicate) {
      // Second copy under the same wire sequence; the receiver's duplicate
      // suppression drops it. Best-effort: a cancelled duplicate is no loss.
      channel->SendDuplicate(NetBlock{block, route.from_logical, seq}, cancel);
    }
    blocks_sent_metric_->Add();
    bytes_sent_metric_->Add(bytes);
    sent_metric_->Add();
    sent_per_node_[route.from_physical]->Add();
    TraceCollector* tc = TraceCollector::Global();
    if (tc->enabled()) {
      tc->Instant(clock_->NowNanos(), route.from_physical, "net", "send",
                  {{"exchange", static_cast<int64_t>(route.exchange_id)},
                   {"to", static_cast<int64_t>(route.to_physical)},
                   {"bytes", bytes},
                   {"queued", static_cast<int64_t>(channel->size())}});
    }
    return SendOutcome::kOk;
  }
}

void Network::CloseProducer(int exchange_id) {
  std::vector<int> consumers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = exchange_consumers_.find(exchange_id);
    if (it == exchange_consumers_.end()) return;
    consumers = it->second;
  }
  for (int node : consumers) {
    BlockChannel* channel = GetChannel(exchange_id, node);
    if (channel != nullptr) channel->CloseProducer();
  }
}

void Network::DestroyExchange(int exchange_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = exchange_consumers_.find(exchange_id);
  if (it == exchange_consumers_.end()) return;
  for (int node : it->second) channels_.erase({exchange_id, node});
  exchange_consumers_.erase(it);
}

BlockChannel* Network::GetChannel(int exchange_id, int node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find({exchange_id, node});
  return it == channels_.end() ? nullptr : it->second.get();
}

void Network::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, channel] : channels_) channel->Cancel();
}

int64_t Network::total_remote_bytes() const {
  return remote_bytes_.load(std::memory_order_relaxed);
}

}  // namespace claims
