#include "net/network.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace claims {

Network::Network(int num_nodes, NetworkOptions options, MemoryTracker* memory)
    : num_nodes_(num_nodes), options_(options), memory_(memory),
      clock_(options.clock != nullptr ? options.clock
                                      : SteadyClock::Default()) {
  MetricsRegistry* reg = MetricsRegistry::Global();
  blocks_sent_metric_ = reg->counter("net.blocks_sent");
  bytes_sent_metric_ = reg->counter("net.bytes_sent");
  remote_bytes_metric_ = reg->counter("net.remote_bytes");
  for (int i = 0; i < num_nodes; ++i) {
    // The buckets share the fabric's clock: under a virtual clock, NIC
    // throttle waits advance virtual time instead of sleeping real time.
    egress_.push_back(
        std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec,
                                      clock_));
    ingress_.push_back(
        std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec,
                                      clock_));
  }
}

void Network::CreateExchange(int exchange_id, int num_producers,
                             const std::vector<int>& consumer_nodes,
                             int capacity_override) {
  std::lock_guard<std::mutex> lock(mu_);
  int capacity = options_.capacity_blocks;
  if (capacity_override > 0) capacity = capacity_override;
  if (capacity_override < 0) capacity = 0;  // unbounded
  for (int node : consumer_nodes) {
    auto channel =
        std::make_unique<BlockChannel>(num_producers, capacity, memory_);
    channel->SetTraceInfo(exchange_id, node, clock_);
    channels_[{exchange_id, node}] = std::move(channel);
  }
  exchange_consumers_[exchange_id] = consumer_nodes;
}

bool Network::Send(int exchange_id, int from, int to, BlockPtr block,
                   const std::atomic<bool>* cancel) {
  BlockChannel* channel = GetChannel(exchange_id, to);
  if (channel == nullptr) return false;
  int64_t bytes = block->payload_bytes();
  if (from != to) {
    if (egress_[from]->Acquire(bytes, cancel) < 0) return false;
    if (ingress_[to]->Acquire(bytes, cancel) < 0) return false;
    remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    remote_bytes_metric_->Add(bytes);
  }
  bool ok = channel->Send(NetBlock{std::move(block), from}, cancel);
  if (ok) {
    blocks_sent_metric_->Add();
    bytes_sent_metric_->Add(bytes);
    TraceCollector* tc = TraceCollector::Global();
    if (tc->enabled()) {
      tc->Instant(clock_->NowNanos(), from, "net", "send",
                  {{"exchange", static_cast<int64_t>(exchange_id)},
                   {"to", static_cast<int64_t>(to)},
                   {"bytes", bytes},
                   {"queued", static_cast<int64_t>(channel->size())}});
    }
  }
  return ok;
}

void Network::CloseProducer(int exchange_id) {
  std::vector<int> consumers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = exchange_consumers_.find(exchange_id);
    if (it == exchange_consumers_.end()) return;
    consumers = it->second;
  }
  for (int node : consumers) {
    BlockChannel* channel = GetChannel(exchange_id, node);
    if (channel != nullptr) channel->CloseProducer();
  }
}

void Network::DestroyExchange(int exchange_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = exchange_consumers_.find(exchange_id);
  if (it == exchange_consumers_.end()) return;
  for (int node : it->second) channels_.erase({exchange_id, node});
  exchange_consumers_.erase(it);
}

BlockChannel* Network::GetChannel(int exchange_id, int node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find({exchange_id, node});
  return it == channels_.end() ? nullptr : it->second.get();
}

void Network::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, channel] : channels_) channel->Cancel();
}

int64_t Network::total_remote_bytes() const {
  return remote_bytes_.load(std::memory_order_relaxed);
}

}  // namespace claims
