#include "net/network.h"

#include "common/logging.h"

namespace claims {

Network::Network(int num_nodes, NetworkOptions options, MemoryTracker* memory)
    : num_nodes_(num_nodes), options_(options), memory_(memory) {
  for (int i = 0; i < num_nodes; ++i) {
    egress_.push_back(
        std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec));
    ingress_.push_back(
        std::make_unique<TokenBucket>(options.bandwidth_bytes_per_sec));
  }
}

void Network::CreateExchange(int exchange_id, int num_producers,
                             const std::vector<int>& consumer_nodes,
                             int capacity_override) {
  std::lock_guard<std::mutex> lock(mu_);
  int capacity = options_.capacity_blocks;
  if (capacity_override > 0) capacity = capacity_override;
  if (capacity_override < 0) capacity = 0;  // unbounded
  for (int node : consumer_nodes) {
    channels_[{exchange_id, node}] =
        std::make_unique<BlockChannel>(num_producers, capacity, memory_);
  }
  exchange_consumers_[exchange_id] = consumer_nodes;
}

bool Network::Send(int exchange_id, int from, int to, BlockPtr block,
                   const std::atomic<bool>* cancel) {
  BlockChannel* channel = GetChannel(exchange_id, to);
  if (channel == nullptr) return false;
  if (from != to) {
    int64_t bytes = block->payload_bytes();
    if (egress_[from]->Acquire(bytes, cancel) < 0) return false;
    if (ingress_[to]->Acquire(bytes, cancel) < 0) return false;
    remote_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  }
  return channel->Send(NetBlock{std::move(block), from}, cancel);
}

void Network::CloseProducer(int exchange_id) {
  std::vector<int> consumers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = exchange_consumers_.find(exchange_id);
    if (it == exchange_consumers_.end()) return;
    consumers = it->second;
  }
  for (int node : consumers) {
    BlockChannel* channel = GetChannel(exchange_id, node);
    if (channel != nullptr) channel->CloseProducer();
  }
}

BlockChannel* Network::GetChannel(int exchange_id, int node) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = channels_.find({exchange_id, node});
  return it == channels_.end() ? nullptr : it->second.get();
}

void Network::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, channel] : channels_) channel->Cancel();
}

int64_t Network::total_remote_bytes() const {
  return remote_bytes_.load(std::memory_order_relaxed);
}

}  // namespace claims
