#include "net/token_bucket.h"

#include <algorithm>

#include "common/logging.h"

namespace claims {

double TokenBucket::BurstBytes(int64_t bytes_per_sec) {
  // One burst's worth of tokens (up to 64 KB or 10 ms of bandwidth).
  return std::max<double>(64 * 1024.0,
                          static_cast<double>(bytes_per_sec) * 0.01);
}

TokenBucket::TokenBucket(int64_t bytes_per_sec, Clock* clock)
    : bytes_per_sec_(bytes_per_sec),
      clock_(clock != nullptr ? clock : SteadyClock::Default()) {
  last_refill_ns_ = clock_->NowNanos();
  tokens_ = bytes_per_sec > 0 ? BurstBytes(bytes_per_sec) : 0;
}

void TokenBucket::SetBytesPerSec(int64_t bytes_per_sec) {
  std::lock_guard<std::mutex> lock(mu_);
  bytes_per_sec_.store(bytes_per_sec, std::memory_order_relaxed);
  // Restart the refill timeline at the new rate and cap any accrued backlog
  // at the new burst, so a freshly degraded NIC throttles immediately.
  last_refill_ns_ = clock_->NowNanos();
  tokens_ = std::min(tokens_, BurstBytes(bytes_per_sec));
}

int64_t TokenBucket::Acquire(int64_t bytes, const std::atomic<bool>* cancel) {
  if (bytes_per_sec() <= 0) {
    total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    return 0;
  }
  int64_t t0 = clock_->NowNanos();
  while (true) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return -1;
    }
    int64_t wait_ns = 0;
    int64_t refill_now = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Re-read the rate every round: SetBytesPerSec may rewrite it while we
      // wait, and owed time must be computed against the rate now in force.
      const int64_t rate = bytes_per_sec_.load(std::memory_order_relaxed);
      if (rate <= 0) {
        total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        return clock_->NowNanos() - t0;
      }
      const double burst = BurstBytes(rate);
      refill_now = clock_->NowNanos();
      tokens_ += static_cast<double>(refill_now - last_refill_ns_) / 1e9 *
                 static_cast<double>(rate);
      tokens_ = std::min(tokens_, burst + static_cast<double>(bytes));
      last_refill_ns_ = refill_now;
      if (tokens_ >= static_cast<double>(bytes)) {
        tokens_ -= static_cast<double>(bytes);
        total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
        return clock_->NowNanos() - t0;
      }
      wait_ns = static_cast<int64_t>((static_cast<double>(bytes) - tokens_) /
                                     static_cast<double>(rate) * 1e9);
    }
    // Wait roughly until enough tokens accrue, capped so cancellation stays
    // responsive. The wait goes through the injected clock: a virtual clock
    // advances its own time, so owed tokens accrue in the same timeline the
    // refill above reads.
    wait_ns = std::clamp<int64_t>(wait_ns, 100'000, 5'000'000);
    clock_->SleepNanos(wait_ns);
    if (clock_->NowNanos() <= refill_now) {
      // The clock did not advance across its own wait: a frozen manual clock
      // with no SleepNanos override. Owed tokens can never accrue — spinning
      // here would hang the sender forever, so reject the acquisition like a
      // cancellation.
      CLAIMS_LOG(Error) << "TokenBucket::Acquire: injected clock did not "
                           "advance across SleepNanos; rejecting acquire of "
                        << bytes << " bytes (use a clock whose SleepNanos "
                           "advances its own time)";
      return -1;
    }
  }
}

}  // namespace claims
