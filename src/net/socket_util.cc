#include "net/socket_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/string_util.h"

namespace claims {

Status ListenSocket::Listen(const std::string& bind_address, int port,
                            int backlog) {
  if (fd_ >= 0) return Status::Internal("listener already open");
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address: " + bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(StrFormat("bind(%s:%d): %s", bind_address.c_str(),
                                      port, std::strerror(errno)));
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Status::Internal(StrFormat("listen(): %s", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  fd_.store(fd, std::memory_order_release);
  return Status::OK();
}

Result<int> ListenSocket::Accept() {
  // Snapshot: Close() from another thread shuts the fd down, which wakes the
  // blocked accept() with an error that maps to Cancelled below.
  int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return Status::Cancelled("listener closed");
  int client = ::accept(fd, nullptr, nullptr);
  if (client < 0) {
    if (fd_.load(std::memory_order_acquire) < 0 || errno == EBADF ||
        errno == EINVAL) {
      return Status::Cancelled("listener closed");
    }
    return Status::Internal(StrFormat("accept(): %s", std::strerror(errno)));
  }
  if (fd_.load(std::memory_order_acquire) < 0) {
    // Closed while this connection sat in the backlog.
    ::close(client);
    return Status::Cancelled("listener closed");
  }
  return client;
}

void ListenSocket::Close() {
  int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd < 0) return;
  // shutdown() wakes any thread blocked in accept() on Linux; close()
  // releases the port.
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

bool WriteFully(int fd, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

int64_t ReadUntilHeaderEnd(int fd, std::string* out, size_t max_bytes) {
  char buf[4096];
  while (out->size() < max_bytes) {
    size_t scan_from = out->size() >= 3 ? out->size() - 3 : 0;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return -1;
    out->append(buf, static_cast<size_t>(n));
    size_t pos = out->find("\r\n\r\n", scan_from);
    if (pos != std::string::npos) {
      return static_cast<int64_t>(out->size() - (pos + 4));
    }
  }
  return -1;
}

bool ReadExact(int fd, std::string* out, size_t n) {
  char buf[4096];
  while (n > 0) {
    ssize_t r = ::recv(fd, buf, std::min(n, sizeof(buf)), 0);
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) return false;
    out->append(buf, static_cast<size_t>(r));
    n -= static_cast<size_t>(r);
  }
  return true;
}

void CloseSocket(int fd) {
  if (fd < 0) return;
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

Result<std::string> HttpRoundTrip(const std::string& host, int port,
                                  const std::string& method,
                                  const std::string& target,
                                  const std::string& body) {
  constexpr size_t kMaxResponse = 8u << 20;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrFormat("socket(): %s", std::strerror(errno)));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(StrFormat("connect(%s:%d): %s", host.c_str(),
                                      port, std::strerror(errno)));
  }
  std::string request = StrFormat(
      "%s %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n"
      "Content-Length: %zu\r\n\r\n",
      method.c_str(), target.c_str(), host.c_str(), body.size());
  request += body;
  if (!WriteFully(fd, request.data(), request.size())) {
    CloseSocket(fd);
    return Status::Internal("short write of HTTP request");
  }
  // Connection: close — the full response is everything until EOF.
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      CloseSocket(fd);
      return Status::Internal(StrFormat("recv(): %s", std::strerror(errno)));
    }
    if (n == 0) break;
    response.append(buf, static_cast<size_t>(n));
    if (response.size() > kMaxResponse) {
      CloseSocket(fd);
      return Status::ResourceExhausted("HTTP response exceeds 8 MiB cap");
    }
  }
  CloseSocket(fd);
  if (response.empty()) return Status::Internal("empty HTTP response");
  return response;
}

int ParseHttpResponse(const std::string& raw, std::string* body) {
  if (raw.rfind("HTTP/1.", 0) != 0) return -1;
  size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) return -1;
  int code = std::atoi(raw.c_str() + sp + 1);
  if (body != nullptr) {
    size_t end = raw.find("\r\n\r\n");
    *body = end == std::string::npos ? "" : raw.substr(end + 4);
  }
  return code;
}

}  // namespace claims
