// The paper's motivating scenario (Fig. 1): a financial data warehouse over
// Stock-Exchange tables, running the daily report queries SSE-Q6..SSE-Q9
// with elastic pipelining and showing the dynamic scheduler's footprint.
//
//   ./financial_report [trades_rows]

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "engine/database.h"
#include "engine/workloads.h"

int main(int argc, char** argv) {
  using namespace claims;
  int64_t trades = argc > 1 ? std::atoll(argv[1]) : 600'000;

  DatabaseOptions options;
  options.cluster.num_nodes = 4;
  options.cluster.cores_per_node = 8;
  // Paper-style 50 ms scheduling rounds.
  options.cluster.scheduler_period_ms = 50;
  Database db(options);

  std::printf("Generating Stock-Exchange data (%lld trades) ...\n",
              static_cast<long long>(trades));
  SseConfig sse;
  sse.trades_rows = trades;
  sse.securities_rows = trades / 2;
  if (Status s = db.LoadSse(sse); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // The Fig. 1 query: repartition join + aggregation.
  std::printf("\nFig. 1 plan for SSE-Q9:\n%s\n",
              db.Explain(*SseQuery(9))->c_str());

  for (int q = 6; q <= 9; ++q) {
    ExecOptions exec;
    exec.mode = ExecMode::kElastic;
    exec.parallelism = 1;  // let the dynamic scheduler find the parallelism
    auto result = db.Query(*SseQuery(q), exec);
    if (!result.ok()) {
      std::fprintf(stderr, "SSE-Q%d failed: %s\n", q,
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("SSE-Q%d: %lld rows in %.1f ms (network %s, peak memory %s)\n",
                q, static_cast<long long>(result->num_rows()),
                db.last_stats().elapsed_ns / 1e6,
                HumanBytes(db.last_stats().remote_bytes).c_str(),
                HumanBytes(db.last_stats().peak_memory_bytes).c_str());
    if (q == 6) std::printf("%s", result->ToString(3).c_str());
  }
  return 0;
}
