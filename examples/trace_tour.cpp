// Captures one Perfetto trace spanning both execution substrates:
//
//   1. a real 2-node cluster query (threads, wall-clock timestamps) — the
//      repartition-join-aggregate shape of the paper's Fig. 1, run under EP
//      so the dynamic schedulers emit Expand/Shrink decisions;
//   2. a scaled-down SSE-Q9 on the virtual-time simulator (virtual
//      timestamps, pids 1000+node).
//
// Writes trace_tour.json (override with CLAIMS_TRACE=<path>), prints the
// query's EXPLAIN-ANALYZE report and the metrics snapshot. Load the JSON in
// https://ui.perfetto.dev: the real nodes appear as processes 0-1, the
// simulated nodes as 1000-1002; look for "tick" instants with lambda/R_i
// args, Expand/Shrink decision markers, "send"/"recv"/"xfer" block events,
// and the per-segment "parallelism:*" counter tracks.

#include <cstdio>
#include <cstdlib>

#include "cluster/executor.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "sim/specs.h"

using namespace claims;

namespace {

ExprPtr Col(const Schema& s, const char* name) {
  int i = s.FindColumn(name);
  return MakeColumnRef(i, s.column(i).type, name);
}

/// Fig. 1 shape on two nodes: repartition kv1 on k, join with co-located
/// kv2, aggregate, gather at the master.
PhysicalPlan JoinAggPlan(Catalog* catalog) {
  TablePtr kv1 = *catalog->GetTable("kv1");
  TablePtr kv2 = *catalog->GetTable("kv2");
  PhysicalPlan plan;

  auto f0 = std::make_unique<Fragment>();
  f0->id = 0;
  f0->root = MakeScanOp(*kv1);
  f0->nodes = {0, 1};
  f0->out_exchange_id = 0;
  f0->partitioning = Partitioning::kHash;
  f0->hash_cols = {0};
  f0->consumer_nodes = {0, 1};

  auto f1 = std::make_unique<Fragment>();
  f1->id = 1;
  auto merger = MakeMergerOp(0, f0->root->output_schema);
  auto join = MakeHashJoinOp(std::move(merger), MakeScanOp(*kv2),
                             /*build_keys=*/{0}, /*probe_keys=*/{0});
  const Schema join_schema = join->output_schema;
  std::vector<HashAggIterator::Aggregate> aggs = {
      {AggFn::kSum, Col(join_schema, "v"), "sum_v"},
      {AggFn::kCount, nullptr, "cnt"},
  };
  f1->root = MakeHashAggOp(std::move(join), {Col(join_schema, "k")}, {"k"},
                           std::move(aggs), HashAggIterator::Mode::kShared);
  f1->nodes = {0, 1};
  f1->out_exchange_id = 1;
  f1->partitioning = Partitioning::kToOne;
  f1->consumer_nodes = {0};

  plan.result_schema = f1->root->output_schema;
  plan.result_exchange_id = 1;
  plan.fragments.push_back(std::move(f0));
  plan.fragments.push_back(std::move(f1));
  return plan;
}

}  // namespace

int main() {
  const char* env = std::getenv("CLAIMS_TRACE");
  std::string path = env != nullptr && env[0] != '\0' ? env
                                                      : "trace_tour.json";
  TraceCollector* tc = TraceCollector::Global();
  tc->Enable();

  // ---- 1. Real engine: 2-node EP query ------------------------------------
  Catalog catalog;
  {
    Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("v")});
    auto t = std::make_shared<Table>("kv1", s, /*partitions=*/2,
                                     std::vector<int>{});
    for (int i = 0; i < 200000; ++i) {
      t->AppendValues({Value::Int32(i % 500), Value::Int64(i)});
    }
    if (!catalog.RegisterTable(std::move(t)).ok()) return 1;
  }
  {
    Schema s({ColumnDef::Int32("k"), ColumnDef::Int64("w")});
    auto t = std::make_shared<Table>("kv2", s, /*partitions=*/2,
                                     std::vector<int>{0});
    for (int i = 0; i < 500; ++i) {
      t->AppendValues({Value::Int32(i), Value::Int64(i * 10)});
    }
    if (!catalog.RegisterTable(std::move(t)).ok()) return 1;
  }
  ClusterOptions copts;
  copts.num_nodes = 2;
  copts.cores_per_node = 8;
  copts.scheduler_period_ms = 5;  // tick often enough to adapt a short query
  Cluster cluster(copts, &catalog);

  Executor exec(&cluster);
  ExecOptions opts;
  opts.mode = ExecMode::kElastic;
  opts.parallelism = 1;  // let the schedulers expand it
  PhysicalPlan plan = JoinAggPlan(&catalog);
  auto result = exec.Execute(plan, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("=== real engine (2 nodes, EP) ===\n%s\n",
              exec.report().ToString().c_str());

  // ---- 2. Virtual-time simulator: scaled-down SSE-Q9 ----------------------
  SseSimParams params;
  params.num_nodes = 3;
  params.trades_rows = 3'000'000;
  params.securities_rows = 3'000'000;
  params.result_groups = 50'000;
  SimCostParams costs;
  SimOptions sopt;
  sopt.num_nodes = 3;
  sopt.policy = SimPolicy::kElastic;
  sopt.parallelism = 1;
  SimRun run(SseQ9Spec(params, costs), sopt);
  auto metrics = run.Run();
  if (!metrics.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n",
                 metrics.status().ToString().c_str());
    return 1;
  }
  std::printf("=== simulator (3 nodes, SSE-Q9, EP) ===\n");
  std::printf("virtual response %.2f s, cpu util %.2f, net %.2f GB\n\n",
              metrics->response_ns / 1e9, metrics->avg_cpu_utilization,
              metrics->network_bytes / 1e9);

  std::printf("=== metrics ===\n%s\n",
              MetricsRegistry::Global()->TextSnapshot().c_str());

  Status s = tc->WriteChromeJson(path);
  if (!s.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu trace events to %s — open in ui.perfetto.dev\n",
              tc->size(), path.c_str());
  return 0;
}
