// Runs the paper-scale SSE-Q9 workload on the virtual-time cluster simulator
// under all six scheduling frameworks and prints the comparison — a compact
// tour of the evaluation machinery behind bench/table*.
//
//   ./cluster_sim [nodes]

#include <cstdio>
#include <cstdlib>

#include "sim/specs.h"

int main(int argc, char** argv) {
  using namespace claims;
  int nodes = argc > 1 ? std::atoi(argv[1]) : 10;

  SseSimParams params;
  params.num_nodes = nodes;
  SimCostParams costs;

  std::printf("SSE-Q9 on a simulated %d-node cluster "
              "(840M-row tables, gigabit network)\n\n", nodes);
  std::printf("%-6s %10s %10s %12s %12s %10s\n", "method", "resp (s)",
              "cpu util", "hi-util rate", "peak mem GB", "net GB");
  for (SimPolicy policy :
       {SimPolicy::kElastic, SimPolicy::kStatic, SimPolicy::kMaterialized,
        SimPolicy::kImplicit, SimPolicy::kMorsel, SimPolicy::kMorselPlus}) {
    SimOptions opt;
    opt.num_nodes = nodes;
    opt.policy = policy;
    opt.parallelism = policy == SimPolicy::kElastic ? 1 : 8;
    SimRun run(SseQ9Spec(params, costs), opt);
    auto m = run.Run();
    if (!m.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", SimPolicyName(policy),
                   m.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6s %10.1f %10.2f %12.2f %12.2f %10.2f\n",
                SimPolicyName(policy), m->response_ns / 1e9,
                m->avg_cpu_utilization, m->high_utilization_rate,
                m->peak_memory_bytes / 1073741824.0,
                m->network_bytes / 1e9);
  }
  std::printf("\nEP's parallelism trace (node 0) is what Figure 10 plots; "
              "run bench/fig10_dynamics for the full series.\n");
  return 0;
}
