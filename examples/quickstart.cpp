// Quickstart: spin up an in-process elastic-pipelining cluster, load TPC-H
// data, and run SQL under the three execution frameworks.
//
//   ./quickstart [scale_factor]

#include <cstdio>
#include <cstdlib>

#include "common/string_util.h"
#include "engine/database.h"
#include "engine/workloads.h"

int main(int argc, char** argv) {
  using namespace claims;
  double sf = argc > 1 ? std::atof(argv[1]) : 0.01;

  // A 4-node shared-nothing cluster with 8 worker cores per node.
  DatabaseOptions options;
  options.cluster.num_nodes = 4;
  options.cluster.cores_per_node = 8;
  Database db(options);

  std::printf("Generating TPC-H data at SF=%.3f ...\n", sf);
  TpchConfig tpch;
  tpch.scale_factor = sf;
  if (Status s = db.LoadTpch(tpch); !s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("lineitem rows: %lld\n",
              static_cast<long long>(
                  (*db.catalog()->GetTable("lineitem"))->num_rows()));

  // EXPLAIN shows the distributed fragment plan the optimizer produced.
  const char* sql =
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS qty, "
      "count(*) AS cnt FROM lineitem WHERE l_shipdate <= '1998-09-02' "
      "GROUP BY l_returnflag, l_linestatus ORDER BY l_returnflag, "
      "l_linestatus";
  auto plan_text = db.Explain(sql);
  std::printf("\nEXPLAIN:\n%s\n", plan_text->c_str());

  // Run the same query under elastic (EP), static (SP), and materialized
  // (ME) execution; results must agree, and the stats show each framework's
  // footprint.
  for (ExecMode mode :
       {ExecMode::kElastic, ExecMode::kStatic, ExecMode::kMaterialized}) {
    ExecOptions exec;
    exec.mode = mode;
    exec.parallelism = 2;
    auto result = db.Query(sql, exec);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("--- %s: %.1f ms, peak memory %s ---\n", ExecModeName(mode),
                db.last_stats().elapsed_ns / 1e6,
                HumanBytes(db.last_stats().peak_memory_bytes).c_str());
    std::printf("%s\n", result->ToString().c_str());
  }

  // A join out of the paper's workload library.
  auto r = db.Query(*TpchQuery(3));
  std::printf("TPC-H Q3 top rows:\n%s\n", r->ToString(5).c_str());
  return 0;
}
