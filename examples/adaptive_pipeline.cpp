// Core-API tour of the elastic iterator model (paper §3): build an operator
// pipeline by hand, run it under an ElasticIterator, and drive Expand/Shrink
// directly while it executes — the primitive the dynamic scheduler uses.

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/random.h"
#include "common/string_util.h"
#include "core/elastic_iterator.h"
#include "exec/ops/filter.h"
#include "exec/ops/hash_agg.h"
#include "exec/ops/scan.h"
#include "obs/trace.h"
#include "storage/table.h"

using namespace claims;

int main() {
  // CLAIMS_TRACE=pipeline.json ./adaptive_pipeline captures a Perfetto trace.
  TraceEnvScope trace_scope;
  // A single-partition table with a text column so the LIKE filter has work.
  Schema schema({ColumnDef::Int32("k"), ColumnDef::Char("comment", 44)});
  Table table("events", schema, 1, {});
  const char* words[] = {"alpha", "bravo", "charlie", "delta", "echo"};
  Rng rng(2016);
  for (int i = 0; i < 1'500'000; ++i) {
    char* row = table.AppendRowSlotRoundRobin();
    schema.SetInt32(row, 0, i % 500);
    schema.SetString(row, 1, StrFormat("%s %s %s", words[rng.Uniform(5)],
                                       words[rng.Uniform(5)],
                                       words[rng.Uniform(5)]));
  }

  // scan -> LIKE filter -> hash aggregation (count per key).
  auto scan = std::make_unique<ScanIterator>(&table.partition(0), &schema);
  auto filter = std::make_unique<FilterIterator>(
      std::move(scan), &schema,
      MakeLike(MakeColumnRef(1, DataType::kChar, "comment"), "%alpha%echo%",
               /*negated=*/true));
  HashAggIterator::Spec agg_spec;
  agg_spec.input_schema = &schema;
  agg_spec.group_exprs = {MakeColumnRef(0, DataType::kInt32, "k")};
  agg_spec.group_names = {"k"};
  agg_spec.aggregates = {{AggFn::kCount, nullptr, "cnt"}};
  agg_spec.mode = HashAggIterator::Mode::kIndependent;
  auto agg = std::make_unique<HashAggIterator>(std::move(filter), agg_spec);
  Schema out_schema = agg->output_schema();

  SegmentStats stats;
  ElasticIterator::Options opts;
  opts.initial_parallelism = 1;
  opts.stats = &stats;
  opts.trace_label = "pipeline";
  ElasticIterator elastic(std::move(agg), opts);

  WorkerContext ctx;
  elastic.Open(&ctx);
  std::printf("pipeline started with parallelism %d\n",
              elastic.parallelism());

  // Drain on a consumer thread (the role a sender plays in a segment).
  int64_t groups = 0;
  std::thread consumer([&] {
    BlockPtr block;
    while (elastic.Next(&ctx, &block) == NextResult::kSuccess) {
      groups += block->num_rows();
    }
  });

  // The scheduler's moves, by hand: grow while the build is hot, then shrink.
  for (int core = 1; core <= 3; ++core) {
    int64_t delay = elastic.ExpandMeasured(core);
    std::printf("expand -> parallelism %d (worker processing after %.2f ms)\n",
                elastic.parallelism(), delay / 1e6);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("tuples consumed so far: %lld\n",
              static_cast<long long>(stats.input_tuples.load()));
  for (int i = 0; i < 2; ++i) {
    int64_t delay = elastic.ShrinkBlocking();
    if (delay >= 0) {
      std::printf("shrink -> parallelism %d (terminated in %.2f ms, "
                  "no tuple lost)\n",
                  elastic.parallelism(), delay / 1e6);
    }
  }

  consumer.join();
  elastic.Close();
  std::printf("done: %lld groups, %lld input tuples, selectivity %.3f\n",
              static_cast<long long>(groups),
              static_cast<long long>(stats.input_tuples.load()),
              stats.selectivity());
  return 0;
}
