# Empty dependencies file for claims_cluster.
# This may be replaced when dependencies are built.
