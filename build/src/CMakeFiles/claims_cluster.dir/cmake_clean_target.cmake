file(REMOVE_RECURSE
  "libclaims_cluster.a"
)
