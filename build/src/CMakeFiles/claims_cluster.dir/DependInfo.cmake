
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/claims_cluster.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/claims_cluster.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/exchange.cc" "src/CMakeFiles/claims_cluster.dir/cluster/exchange.cc.o" "gcc" "src/CMakeFiles/claims_cluster.dir/cluster/exchange.cc.o.d"
  "/root/repo/src/cluster/executor.cc" "src/CMakeFiles/claims_cluster.dir/cluster/executor.cc.o" "gcc" "src/CMakeFiles/claims_cluster.dir/cluster/executor.cc.o.d"
  "/root/repo/src/cluster/plan.cc" "src/CMakeFiles/claims_cluster.dir/cluster/plan.cc.o" "gcc" "src/CMakeFiles/claims_cluster.dir/cluster/plan.cc.o.d"
  "/root/repo/src/cluster/result_set.cc" "src/CMakeFiles/claims_cluster.dir/cluster/result_set.cc.o" "gcc" "src/CMakeFiles/claims_cluster.dir/cluster/result_set.cc.o.d"
  "/root/repo/src/cluster/segment.cc" "src/CMakeFiles/claims_cluster.dir/cluster/segment.cc.o" "gcc" "src/CMakeFiles/claims_cluster.dir/cluster/segment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/claims_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
