file(REMOVE_RECURSE
  "CMakeFiles/claims_cluster.dir/cluster/cluster.cc.o"
  "CMakeFiles/claims_cluster.dir/cluster/cluster.cc.o.d"
  "CMakeFiles/claims_cluster.dir/cluster/exchange.cc.o"
  "CMakeFiles/claims_cluster.dir/cluster/exchange.cc.o.d"
  "CMakeFiles/claims_cluster.dir/cluster/executor.cc.o"
  "CMakeFiles/claims_cluster.dir/cluster/executor.cc.o.d"
  "CMakeFiles/claims_cluster.dir/cluster/plan.cc.o"
  "CMakeFiles/claims_cluster.dir/cluster/plan.cc.o.d"
  "CMakeFiles/claims_cluster.dir/cluster/result_set.cc.o"
  "CMakeFiles/claims_cluster.dir/cluster/result_set.cc.o.d"
  "CMakeFiles/claims_cluster.dir/cluster/segment.cc.o"
  "CMakeFiles/claims_cluster.dir/cluster/segment.cc.o.d"
  "libclaims_cluster.a"
  "libclaims_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
