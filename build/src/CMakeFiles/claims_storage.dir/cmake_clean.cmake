file(REMOVE_RECURSE
  "CMakeFiles/claims_storage.dir/storage/catalog.cc.o"
  "CMakeFiles/claims_storage.dir/storage/catalog.cc.o.d"
  "CMakeFiles/claims_storage.dir/storage/datagen/sse_gen.cc.o"
  "CMakeFiles/claims_storage.dir/storage/datagen/sse_gen.cc.o.d"
  "CMakeFiles/claims_storage.dir/storage/datagen/tpch_gen.cc.o"
  "CMakeFiles/claims_storage.dir/storage/datagen/tpch_gen.cc.o.d"
  "CMakeFiles/claims_storage.dir/storage/partition.cc.o"
  "CMakeFiles/claims_storage.dir/storage/partition.cc.o.d"
  "CMakeFiles/claims_storage.dir/storage/schema.cc.o"
  "CMakeFiles/claims_storage.dir/storage/schema.cc.o.d"
  "CMakeFiles/claims_storage.dir/storage/table.cc.o"
  "CMakeFiles/claims_storage.dir/storage/table.cc.o.d"
  "CMakeFiles/claims_storage.dir/storage/types.cc.o"
  "CMakeFiles/claims_storage.dir/storage/types.cc.o.d"
  "CMakeFiles/claims_storage.dir/storage/value.cc.o"
  "CMakeFiles/claims_storage.dir/storage/value.cc.o.d"
  "libclaims_storage.a"
  "libclaims_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
