# Empty dependencies file for claims_storage.
# This may be replaced when dependencies are built.
