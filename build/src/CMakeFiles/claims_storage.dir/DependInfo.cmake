
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/catalog.cc" "src/CMakeFiles/claims_storage.dir/storage/catalog.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/catalog.cc.o.d"
  "/root/repo/src/storage/datagen/sse_gen.cc" "src/CMakeFiles/claims_storage.dir/storage/datagen/sse_gen.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/datagen/sse_gen.cc.o.d"
  "/root/repo/src/storage/datagen/tpch_gen.cc" "src/CMakeFiles/claims_storage.dir/storage/datagen/tpch_gen.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/datagen/tpch_gen.cc.o.d"
  "/root/repo/src/storage/partition.cc" "src/CMakeFiles/claims_storage.dir/storage/partition.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/partition.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/claims_storage.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/claims_storage.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/types.cc" "src/CMakeFiles/claims_storage.dir/storage/types.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/types.cc.o.d"
  "/root/repo/src/storage/value.cc" "src/CMakeFiles/claims_storage.dir/storage/value.cc.o" "gcc" "src/CMakeFiles/claims_storage.dir/storage/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/claims_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
