file(REMOVE_RECURSE
  "libclaims_storage.a"
)
