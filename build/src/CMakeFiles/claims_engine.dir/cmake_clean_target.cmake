file(REMOVE_RECURSE
  "libclaims_engine.a"
)
