# Empty compiler generated dependencies file for claims_engine.
# This may be replaced when dependencies are built.
