file(REMOVE_RECURSE
  "CMakeFiles/claims_engine.dir/engine/database.cc.o"
  "CMakeFiles/claims_engine.dir/engine/database.cc.o.d"
  "CMakeFiles/claims_engine.dir/engine/workloads.cc.o"
  "CMakeFiles/claims_engine.dir/engine/workloads.cc.o.d"
  "libclaims_engine.a"
  "libclaims_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
