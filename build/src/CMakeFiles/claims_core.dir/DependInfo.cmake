
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/barrier.cc" "src/CMakeFiles/claims_core.dir/core/barrier.cc.o" "gcc" "src/CMakeFiles/claims_core.dir/core/barrier.cc.o.d"
  "/root/repo/src/core/context_pool.cc" "src/CMakeFiles/claims_core.dir/core/context_pool.cc.o" "gcc" "src/CMakeFiles/claims_core.dir/core/context_pool.cc.o.d"
  "/root/repo/src/core/data_buffer.cc" "src/CMakeFiles/claims_core.dir/core/data_buffer.cc.o" "gcc" "src/CMakeFiles/claims_core.dir/core/data_buffer.cc.o.d"
  "/root/repo/src/core/elastic_iterator.cc" "src/CMakeFiles/claims_core.dir/core/elastic_iterator.cc.o" "gcc" "src/CMakeFiles/claims_core.dir/core/elastic_iterator.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/claims_core.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/claims_core.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/scalability_vector.cc" "src/CMakeFiles/claims_core.dir/core/scalability_vector.cc.o" "gcc" "src/CMakeFiles/claims_core.dir/core/scalability_vector.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/CMakeFiles/claims_core.dir/core/scheduler.cc.o" "gcc" "src/CMakeFiles/claims_core.dir/core/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/claims_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
