file(REMOVE_RECURSE
  "CMakeFiles/claims_core.dir/core/barrier.cc.o"
  "CMakeFiles/claims_core.dir/core/barrier.cc.o.d"
  "CMakeFiles/claims_core.dir/core/context_pool.cc.o"
  "CMakeFiles/claims_core.dir/core/context_pool.cc.o.d"
  "CMakeFiles/claims_core.dir/core/data_buffer.cc.o"
  "CMakeFiles/claims_core.dir/core/data_buffer.cc.o.d"
  "CMakeFiles/claims_core.dir/core/elastic_iterator.cc.o"
  "CMakeFiles/claims_core.dir/core/elastic_iterator.cc.o.d"
  "CMakeFiles/claims_core.dir/core/metrics.cc.o"
  "CMakeFiles/claims_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/claims_core.dir/core/scalability_vector.cc.o"
  "CMakeFiles/claims_core.dir/core/scalability_vector.cc.o.d"
  "CMakeFiles/claims_core.dir/core/scheduler.cc.o"
  "CMakeFiles/claims_core.dir/core/scheduler.cc.o.d"
  "libclaims_core.a"
  "libclaims_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
