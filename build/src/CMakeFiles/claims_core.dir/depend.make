# Empty dependencies file for claims_core.
# This may be replaced when dependencies are built.
