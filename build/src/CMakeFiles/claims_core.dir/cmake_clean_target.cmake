file(REMOVE_RECURSE
  "libclaims_core.a"
)
