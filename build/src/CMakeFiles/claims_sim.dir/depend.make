# Empty dependencies file for claims_sim.
# This may be replaced when dependencies are built.
