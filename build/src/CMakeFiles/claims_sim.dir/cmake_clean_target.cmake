file(REMOVE_RECURSE
  "libclaims_sim.a"
)
