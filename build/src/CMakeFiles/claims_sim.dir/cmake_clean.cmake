file(REMOVE_RECURSE
  "CMakeFiles/claims_sim.dir/sim/cost_model.cc.o"
  "CMakeFiles/claims_sim.dir/sim/cost_model.cc.o.d"
  "CMakeFiles/claims_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/claims_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/claims_sim.dir/sim/sim_engine.cc.o"
  "CMakeFiles/claims_sim.dir/sim/sim_engine.cc.o.d"
  "CMakeFiles/claims_sim.dir/sim/specs.cc.o"
  "CMakeFiles/claims_sim.dir/sim/specs.cc.o.d"
  "libclaims_sim.a"
  "libclaims_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
