# Empty compiler generated dependencies file for claims_net.
# This may be replaced when dependencies are built.
