file(REMOVE_RECURSE
  "libclaims_net.a"
)
