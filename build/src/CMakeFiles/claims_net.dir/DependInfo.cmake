
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cc" "src/CMakeFiles/claims_net.dir/net/channel.cc.o" "gcc" "src/CMakeFiles/claims_net.dir/net/channel.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/claims_net.dir/net/network.cc.o" "gcc" "src/CMakeFiles/claims_net.dir/net/network.cc.o.d"
  "/root/repo/src/net/token_bucket.cc" "src/CMakeFiles/claims_net.dir/net/token_bucket.cc.o" "gcc" "src/CMakeFiles/claims_net.dir/net/token_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/claims_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
