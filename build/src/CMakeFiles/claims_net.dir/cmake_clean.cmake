file(REMOVE_RECURSE
  "CMakeFiles/claims_net.dir/net/channel.cc.o"
  "CMakeFiles/claims_net.dir/net/channel.cc.o.d"
  "CMakeFiles/claims_net.dir/net/network.cc.o"
  "CMakeFiles/claims_net.dir/net/network.cc.o.d"
  "CMakeFiles/claims_net.dir/net/token_bucket.cc.o"
  "CMakeFiles/claims_net.dir/net/token_bucket.cc.o.d"
  "libclaims_net.a"
  "libclaims_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
