file(REMOVE_RECURSE
  "CMakeFiles/claims_sql.dir/sql/binder.cc.o"
  "CMakeFiles/claims_sql.dir/sql/binder.cc.o.d"
  "CMakeFiles/claims_sql.dir/sql/bound_expr.cc.o"
  "CMakeFiles/claims_sql.dir/sql/bound_expr.cc.o.d"
  "CMakeFiles/claims_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/claims_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/claims_sql.dir/sql/parser.cc.o"
  "CMakeFiles/claims_sql.dir/sql/parser.cc.o.d"
  "CMakeFiles/claims_sql.dir/sql/planner.cc.o"
  "CMakeFiles/claims_sql.dir/sql/planner.cc.o.d"
  "libclaims_sql.a"
  "libclaims_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
