file(REMOVE_RECURSE
  "libclaims_sql.a"
)
