# Empty dependencies file for claims_sql.
# This may be replaced when dependencies are built.
