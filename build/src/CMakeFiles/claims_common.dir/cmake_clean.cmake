file(REMOVE_RECURSE
  "CMakeFiles/claims_common.dir/common/clock.cc.o"
  "CMakeFiles/claims_common.dir/common/clock.cc.o.d"
  "CMakeFiles/claims_common.dir/common/logging.cc.o"
  "CMakeFiles/claims_common.dir/common/logging.cc.o.d"
  "CMakeFiles/claims_common.dir/common/random.cc.o"
  "CMakeFiles/claims_common.dir/common/random.cc.o.d"
  "CMakeFiles/claims_common.dir/common/status.cc.o"
  "CMakeFiles/claims_common.dir/common/status.cc.o.d"
  "CMakeFiles/claims_common.dir/common/string_util.cc.o"
  "CMakeFiles/claims_common.dir/common/string_util.cc.o.d"
  "libclaims_common.a"
  "libclaims_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
