file(REMOVE_RECURSE
  "libclaims_common.a"
)
