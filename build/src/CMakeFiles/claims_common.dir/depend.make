# Empty dependencies file for claims_common.
# This may be replaced when dependencies are built.
