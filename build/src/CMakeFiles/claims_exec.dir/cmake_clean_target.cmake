file(REMOVE_RECURSE
  "libclaims_exec.a"
)
