
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/expr/expr.cc" "src/CMakeFiles/claims_exec.dir/exec/expr/expr.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/expr/expr.cc.o.d"
  "/root/repo/src/exec/expr/like.cc" "src/CMakeFiles/claims_exec.dir/exec/expr/like.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/expr/like.cc.o.d"
  "/root/repo/src/exec/hash_table.cc" "src/CMakeFiles/claims_exec.dir/exec/hash_table.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/hash_table.cc.o.d"
  "/root/repo/src/exec/ops/filter.cc" "src/CMakeFiles/claims_exec.dir/exec/ops/filter.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/ops/filter.cc.o.d"
  "/root/repo/src/exec/ops/hash_agg.cc" "src/CMakeFiles/claims_exec.dir/exec/ops/hash_agg.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/ops/hash_agg.cc.o.d"
  "/root/repo/src/exec/ops/hash_join.cc" "src/CMakeFiles/claims_exec.dir/exec/ops/hash_join.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/ops/hash_join.cc.o.d"
  "/root/repo/src/exec/ops/scan.cc" "src/CMakeFiles/claims_exec.dir/exec/ops/scan.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/ops/scan.cc.o.d"
  "/root/repo/src/exec/ops/sort.cc" "src/CMakeFiles/claims_exec.dir/exec/ops/sort.cc.o" "gcc" "src/CMakeFiles/claims_exec.dir/exec/ops/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/claims_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
