# Empty compiler generated dependencies file for claims_exec.
# This may be replaced when dependencies are built.
