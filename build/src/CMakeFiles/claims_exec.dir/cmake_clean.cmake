file(REMOVE_RECURSE
  "CMakeFiles/claims_exec.dir/exec/expr/expr.cc.o"
  "CMakeFiles/claims_exec.dir/exec/expr/expr.cc.o.d"
  "CMakeFiles/claims_exec.dir/exec/expr/like.cc.o"
  "CMakeFiles/claims_exec.dir/exec/expr/like.cc.o.d"
  "CMakeFiles/claims_exec.dir/exec/hash_table.cc.o"
  "CMakeFiles/claims_exec.dir/exec/hash_table.cc.o.d"
  "CMakeFiles/claims_exec.dir/exec/ops/filter.cc.o"
  "CMakeFiles/claims_exec.dir/exec/ops/filter.cc.o.d"
  "CMakeFiles/claims_exec.dir/exec/ops/hash_agg.cc.o"
  "CMakeFiles/claims_exec.dir/exec/ops/hash_agg.cc.o.d"
  "CMakeFiles/claims_exec.dir/exec/ops/hash_join.cc.o"
  "CMakeFiles/claims_exec.dir/exec/ops/hash_join.cc.o.d"
  "CMakeFiles/claims_exec.dir/exec/ops/scan.cc.o"
  "CMakeFiles/claims_exec.dir/exec/ops/scan.cc.o.d"
  "CMakeFiles/claims_exec.dir/exec/ops/sort.cc.o"
  "CMakeFiles/claims_exec.dir/exec/ops/sort.cc.o.d"
  "libclaims_exec.a"
  "libclaims_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/claims_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
