file(REMOVE_RECURSE
  "CMakeFiles/financial_report.dir/financial_report.cpp.o"
  "CMakeFiles/financial_report.dir/financial_report.cpp.o.d"
  "financial_report"
  "financial_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/financial_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
