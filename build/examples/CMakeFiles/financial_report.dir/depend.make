# Empty dependencies file for financial_report.
# This may be replaced when dependencies are built.
