
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_selectivity.cc" "bench/CMakeFiles/fig11_selectivity.dir/fig11_selectivity.cc.o" "gcc" "bench/CMakeFiles/fig11_selectivity.dir/fig11_selectivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/claims_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/claims_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
