# Empty dependencies file for fig11_selectivity.
# This may be replaced when dependencies are built.
