file(REMOVE_RECURSE
  "CMakeFiles/fig11_selectivity.dir/fig11_selectivity.cc.o"
  "CMakeFiles/fig11_selectivity.dir/fig11_selectivity.cc.o.d"
  "fig11_selectivity"
  "fig11_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
