file(REMOVE_RECURSE
  "CMakeFiles/table5_schedulers.dir/table5_schedulers.cc.o"
  "CMakeFiles/table5_schedulers.dir/table5_schedulers.cc.o.d"
  "table5_schedulers"
  "table5_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
