# Empty dependencies file for table5_schedulers.
# This may be replaced when dependencies are built.
