# Empty dependencies file for table7_endtoend.
# This may be replaced when dependencies are built.
