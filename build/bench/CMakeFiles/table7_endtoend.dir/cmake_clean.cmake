file(REMOVE_RECURSE
  "CMakeFiles/table7_endtoend.dir/table7_endtoend.cc.o"
  "CMakeFiles/table7_endtoend.dir/table7_endtoend.cc.o.d"
  "table7_endtoend"
  "table7_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
