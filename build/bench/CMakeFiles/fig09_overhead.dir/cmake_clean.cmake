file(REMOVE_RECURSE
  "CMakeFiles/fig09_overhead.dir/fig09_overhead.cc.o"
  "CMakeFiles/fig09_overhead.dir/fig09_overhead.cc.o.d"
  "fig09_overhead"
  "fig09_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
