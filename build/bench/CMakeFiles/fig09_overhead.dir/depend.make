# Empty dependencies file for fig09_overhead.
# This may be replaced when dependencies are built.
