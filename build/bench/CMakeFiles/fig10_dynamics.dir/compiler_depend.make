# Empty compiler generated dependencies file for fig10_dynamics.
# This may be replaced when dependencies are built.
