file(REMOVE_RECURSE
  "CMakeFiles/fig10_dynamics.dir/fig10_dynamics.cc.o"
  "CMakeFiles/fig10_dynamics.dir/fig10_dynamics.cc.o.d"
  "fig10_dynamics"
  "fig10_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
