# Empty dependencies file for fig12_interference.
# This may be replaced when dependencies are built.
