file(REMOVE_RECURSE
  "CMakeFiles/fig12_interference.dir/fig12_interference.cc.o"
  "CMakeFiles/fig12_interference.dir/fig12_interference.cc.o.d"
  "fig12_interference"
  "fig12_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
