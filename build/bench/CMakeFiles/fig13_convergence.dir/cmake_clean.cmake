file(REMOVE_RECURSE
  "CMakeFiles/fig13_convergence.dir/fig13_convergence.cc.o"
  "CMakeFiles/fig13_convergence.dir/fig13_convergence.cc.o.d"
  "fig13_convergence"
  "fig13_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
