# Empty compiler generated dependencies file for fig13_convergence.
# This may be replaced when dependencies are built.
