# Empty compiler generated dependencies file for table6_utilization.
# This may be replaced when dependencies are built.
