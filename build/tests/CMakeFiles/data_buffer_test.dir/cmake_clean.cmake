file(REMOVE_RECURSE
  "CMakeFiles/data_buffer_test.dir/data_buffer_test.cc.o"
  "CMakeFiles/data_buffer_test.dir/data_buffer_test.cc.o.d"
  "data_buffer_test"
  "data_buffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
