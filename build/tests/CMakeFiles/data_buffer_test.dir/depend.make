# Empty dependencies file for data_buffer_test.
# This may be replaced when dependencies are built.
