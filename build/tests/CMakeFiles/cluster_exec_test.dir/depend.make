# Empty dependencies file for cluster_exec_test.
# This may be replaced when dependencies are built.
