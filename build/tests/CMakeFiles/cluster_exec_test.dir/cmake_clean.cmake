file(REMOVE_RECURSE
  "CMakeFiles/cluster_exec_test.dir/cluster_exec_test.cc.o"
  "CMakeFiles/cluster_exec_test.dir/cluster_exec_test.cc.o.d"
  "cluster_exec_test"
  "cluster_exec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
