file(REMOVE_RECURSE
  "CMakeFiles/scalability_vector_test.dir/scalability_vector_test.cc.o"
  "CMakeFiles/scalability_vector_test.dir/scalability_vector_test.cc.o.d"
  "scalability_vector_test"
  "scalability_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalability_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
