file(REMOVE_RECURSE
  "CMakeFiles/sql_frontend_test.dir/sql_frontend_test.cc.o"
  "CMakeFiles/sql_frontend_test.dir/sql_frontend_test.cc.o.d"
  "sql_frontend_test"
  "sql_frontend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_frontend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
