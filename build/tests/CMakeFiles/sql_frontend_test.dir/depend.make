# Empty dependencies file for sql_frontend_test.
# This may be replaced when dependencies are built.
