file(REMOVE_RECURSE
  "CMakeFiles/elastic_iterator_test.dir/elastic_iterator_test.cc.o"
  "CMakeFiles/elastic_iterator_test.dir/elastic_iterator_test.cc.o.d"
  "elastic_iterator_test"
  "elastic_iterator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_iterator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
