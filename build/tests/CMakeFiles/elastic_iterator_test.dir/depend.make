# Empty dependencies file for elastic_iterator_test.
# This may be replaced when dependencies are built.
