# Empty dependencies file for sse_gen_test.
# This may be replaced when dependencies are built.
