file(REMOVE_RECURSE
  "CMakeFiles/sse_gen_test.dir/sse_gen_test.cc.o"
  "CMakeFiles/sse_gen_test.dir/sse_gen_test.cc.o.d"
  "sse_gen_test"
  "sse_gen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sse_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
