file(REMOVE_RECURSE
  "CMakeFiles/context_pool_test.dir/context_pool_test.cc.o"
  "CMakeFiles/context_pool_test.dir/context_pool_test.cc.o.d"
  "context_pool_test"
  "context_pool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_pool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
