# Empty dependencies file for context_pool_test.
# This may be replaced when dependencies are built.
